#include "tdm/slot_table.hpp"

#include "common/assert.hpp"
#include "common/state_io.hpp"

namespace hybridnoc {

namespace {
bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

SlotTable::SlotTable(int capacity, int active)
    : capacity_(capacity), active_(active) {
  HN_CHECK(is_pow2(capacity) && is_pow2(active) && active <= capacity);
  for (auto& column : entries_) column.resize(static_cast<size_t>(capacity));
}

bool SlotTable::can_reserve(int slot, int duration, Port in, Port out) const {
  HN_CHECK(duration >= 1 && duration <= active_);
  for (int d = 0; d < duration; ++d) {
    const int s = wrap(slot + d);
    if (at(s, in).valid) return false;  // input conflict (Fig 1, setup 2)
    for (int j = 0; j < kNumPorts; ++j) {
      const Port pj = static_cast<Port>(j);
      if (pj == in) continue;
      if (valid_by_port_[static_cast<size_t>(j)] == 0) continue;
      const Entry& e = at(s, pj);
      if (e.valid && e.out == out) return false;  // output conflict (setup 3)
    }
  }
  return true;
}

bool SlotTable::reserve(int slot, int duration, Port in, Port out,
                        PacketId owner, Cycle now) {
  if (!can_reserve(slot, duration, in, out)) return false;
  for (int d = 0; d < duration; ++d) {
    const int s = wrap(slot + d);
    Entry& e = at(s, in);
    e.valid = true;
    e.out = out;
    e.owner = owner;
    e.stamp = now;
    ++valid_by_port_[static_cast<size_t>(in)];
    note_expiry(s, in, e);
  }
  return true;
}

std::optional<Port> SlotTable::release(int slot, int duration, Port in,
                                       PacketId owner) {
  std::optional<Port> first_out;
  for (int d = 0; d < duration; ++d) {
    Entry& e = at(wrap(slot + d), in);
    if (!e.valid) continue;
    if (owner != 0 && e.owner != owner) continue;  // someone else's entry
    if (!first_out) first_out = e.out;
    e.valid = false;
    e.bucket = kNoExpiryBucket;  // its bucket reference is now stale
    --valid_by_port_[static_cast<size_t>(in)];
  }
  return first_out;
}

std::optional<Port> SlotTable::lookup(Cycle cycle, Port in) const {
  return lookup_slot(slot_of(cycle), in);
}

std::optional<Port> SlotTable::lookup_slot(int slot, Port in) const {
  const Entry& e = at(wrap(slot), in);
  if (!e.valid) return std::nullopt;
  return e.out;
}

std::optional<PacketId> SlotTable::owner_at(int slot, Port in) const {
  const Entry& e = at(wrap(slot), in);
  if (!e.valid) return std::nullopt;
  return e.owner;
}

void SlotTable::refresh(int slot, int count, Port in, Cycle now) {
  for (int d = 0; d < count; ++d) {
    const int s = wrap(slot + d);
    Entry& e = at(s, in);
    if (!e.valid) continue;
    e.stamp = now;
    note_expiry(s, in, e);
  }
}

std::optional<Port> SlotTable::output_reserved_at(Cycle cycle, Port out) const {
  const int s = slot_of(cycle);
  for (int j = 0; j < kNumPorts; ++j) {
    if (valid_by_port_[static_cast<size_t>(j)] == 0) continue;
    const Entry& e = at(s, static_cast<Port>(j));
    if (e.valid && e.out == out) return static_cast<Port>(j);
  }
  return std::nullopt;
}

double SlotTable::occupancy() const {
  return static_cast<double>(valid_entries()) /
         (static_cast<double>(active_) * kNumPorts);
}

bool SlotTable::input_free(int slot, int duration, Port in) const {
  if (valid_by_port_[static_cast<size_t>(in)] == 0) return true;
  for (int d = 0; d < duration; ++d) {
    if (at(wrap(slot + d), in).valid) return false;
  }
  return true;
}

void SlotTable::reset() {
  for (auto& column : entries_) {
    for (auto& e : column) {
      e.valid = false;
      e.bucket = kNoExpiryBucket;
    }
  }
  valid_by_port_.fill(0);
  for (auto& buckets : expiry_buckets_) buckets.clear();
}

void SlotTable::set_expiry_tracking(bool on) {
  if (track_expiry_ == on) return;
  track_expiry_ = on;
  for (auto& buckets : expiry_buckets_) buckets.clear();
  for (auto& column : entries_) {
    for (auto& e : column) e.bucket = kNoExpiryBucket;
  }
  if (!on) return;
  for (int j = 0; j < kNumPorts; ++j) {
    const Port in = static_cast<Port>(j);
    if (valid_by_port_[static_cast<size_t>(j)] == 0) continue;
    for (int s = 0; s < capacity_; ++s) {
      Entry& e = at(s, in);
      if (e.valid) note_expiry(s, in, e);
    }
  }
}

bool SlotTable::grow() {
  if (active_ == capacity_) return false;
  set_active_size(active_ * 2);
  return true;
}

void SlotTable::set_active_size(int active) {
  HN_CHECK(is_pow2(active) && active <= capacity_);
  reset();
  active_ = active;
}

void SlotTable::save_state(StateWriter& w) const {
  w.section("slot_table");
  w.i32(capacity_);
  w.i32(active_);
  w.b(track_expiry_);
  for (int j = 0; j < kNumPorts; ++j) {
    const Port in = static_cast<Port>(j);
    w.i32(valid_by_port_[static_cast<size_t>(j)]);
    for (int s = 0; s < active_; ++s) {
      const Entry& e = at(s, in);
      if (!e.valid) continue;
      w.i32(s);
      w.u8(static_cast<std::uint8_t>(e.out));
      w.u64(e.owner);
      w.u64(e.stamp);
    }
  }
}

void SlotTable::restore_state(StateReader& r) {
  r.section("slot_table");
  const int capacity = r.i32();
  if (capacity != capacity_) throw StateError("slot-table capacity mismatch");
  const int active = r.i32();
  if (!is_pow2(active) || active > capacity_) {
    throw StateError("slot-table active size invalid");
  }
  const bool track = r.b();
  // Rebuild with tracking off so the entry fill carries no bucket
  // bookkeeping, then re-enable to reindex from the restored entries.
  const bool had_tracking = track_expiry_;
  if (had_tracking) set_expiry_tracking(false);
  set_active_size(active);
  for (int j = 0; j < kNumPorts; ++j) {
    const Port in = static_cast<Port>(j);
    const int valid = r.i32();
    if (valid < 0 || valid > active) {
      throw StateError("slot-table valid count out of range");
    }
    for (int n = 0; n < valid; ++n) {
      const int s = r.i32();
      if (s < 0 || s >= active) throw StateError("slot index out of range");
      Entry& e = at(s, in);
      if (e.valid) throw StateError("duplicate slot entry");
      e.valid = true;
      e.out = static_cast<Port>(r.u8());
      if (static_cast<int>(e.out) >= kNumPorts) {
        throw StateError("slot entry port out of range");
      }
      e.owner = r.u64();
      e.stamp = r.u64();
      ++valid_by_port_[static_cast<size_t>(j)];
    }
  }
  if (track) set_expiry_tracking(true);
}

}  // namespace hybridnoc
