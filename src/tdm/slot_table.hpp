// The per-router slot table of Section II: S recurrent time slots; for each
// slot and each input port, a valid bit plus an output-port id. A valid entry
// at slot s means "at cycles ≡ s (mod S_active), the crossbar connection
// in -> out is reserved for a circuit-switched flit".
//
// Reservation semantics follow Figure 1 exactly:
//  * reservations cover `duration` consecutive slots, modulo the active size;
//  * a reservation fails if any covered (slot, in) entry is already valid
//    (input conflict, Figure 1 setup 2);
//  * or if any other input holds the same output at a covered slot
//    (output conflict, Figure 1 setup 3);
//  * failed reservations leave the table untouched;
//  * teardown resets the valid bits so slots can be reused.
//
// Each entry additionally records the id of the setup message that created
// it (its *owner*) and the cycle it was last reserved or used. The owner tag
// fences teardowns: a teardown releases only entries its own setup wrote, so
// a late, duplicated or mis-addressed teardown can never destroy another
// connection's reservations. The use stamp backs a lease: entries that carry
// no circuit traffic for a long time are reclaimed (expire_older_than),
// bounding the damage of a lost teardown.
//
// Storage is sharded by input port: one entry column and one expiry-bucket
// index per port, with per-port valid counts. A reservation only ever lives
// under its input port, so the lease sweep and the consistency audit skip
// whole ports the moment their count is zero — on a quiet router that turns
// the periodic sweeps into five integer reads instead of a walk over the
// dense active x kNumPorts array.
//
// Section II-C's dynamic time-division granularity is supported through the
// active size: only the first `active` entries participate (arithmetic is
// modulo `active`); the rest are power-gated. Growing the active size resets
// the table (the paper: "all slot tables are reset, and the path setup
// procedure restarts").
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/pool.hpp"
#include "common/types.hpp"

namespace hybridnoc {

class StateWriter;
class StateReader;

class SlotTable {
 public:
  /// `capacity` is the physical table size; `active` the initially powered
  /// region. Both must be powers of two, active <= capacity.
  SlotTable(int capacity, int active);

  int capacity() const { return capacity_; }
  int active_size() const { return active_; }

  /// Slot index a given cycle maps to.
  int slot_of(Cycle cycle) const { return static_cast<int>(cycle) & (active_ - 1); }

  /// Would reserving [slot, slot+duration) for in->out succeed?
  bool can_reserve(int slot, int duration, Port in, Port out) const;

  /// Reserve; returns false (table unchanged) on any conflict. `owner` tags
  /// the entries with the reserving setup's packet id (0 = untagged); `now`
  /// initialises the lease stamp.
  bool reserve(int slot, int duration, Port in, Port out, PacketId owner = 0,
               Cycle now = 0);

  /// Invalidate [slot, slot+duration) for `in`. Entries already invalid are
  /// ignored (a teardown may race a smaller prior release), and when
  /// `owner` is nonzero so are entries written by a different setup — a
  /// stale teardown must not release a newer connection's slots. Returns the
  /// output port of the first valid released entry, if any.
  std::optional<Port> release(int slot, int duration, Port in,
                              PacketId owner = 0);

  /// Valid entry for (cycle, in), if any.
  std::optional<Port> lookup(Cycle cycle, Port in) const;
  std::optional<Port> lookup_slot(int slot, Port in) const;

  /// Owner tag of the valid entry at (slot, in), if any.
  std::optional<PacketId> owner_at(int slot, Port in) const;

  /// Refresh the lease stamp of the valid entries [slot, slot+count) for
  /// `in`; called when circuit traffic traverses a reservation window.
  void refresh(int slot, int count, Port in, Cycle now);

  /// Release every valid entry whose lease stamp is older than `cutoff`,
  /// invoking `on_expire(slot, in)` for each released entry. Returns the
  /// number of entries released. This is the backstop that reclaims
  /// reservations orphaned by lost teardown messages.
  ///
  /// Ports with no valid entries are skipped outright. With expiry tracking
  /// on (the default), each port's entries are bucketed by
  /// stamp >> kExpiryBucketShift, so a sweep visits only buckets that can
  /// hold expirable stamps — O(expired + stale refs retired + one straddling
  /// bucket per port) instead of a full active x kNumPorts scan. Bucket
  /// references go stale when an entry is released or re-stamped; they are
  /// validated (and discarded) lazily here, which keeps reserve/refresh O(1).
  ///
  /// Expiry order is port-major (all of port 0's expirations before port
  /// 1's). Callers' on_expire actions (DLT invalidation, counter bumps) are
  /// commutative across entries, so the order is not observable.
  template <typename ExpireFn>
  int expire_older_than(Cycle cutoff, ExpireFn&& on_expire) {
    int expired = 0;
    for (int j = 0; j < kNumPorts; ++j) {
      if (valid_by_port_[static_cast<size_t>(j)] == 0) continue;
      const Port in = static_cast<Port>(j);
      if (!track_expiry_) {
        for (int s = 0; s < active_; ++s) {
          Entry& e = at(s, in);
          if (!e.valid || e.stamp >= cutoff) continue;
          e.valid = false;
          --valid_by_port_[static_cast<size_t>(j)];
          ++expired;
          on_expire(s, in);
        }
        continue;
      }
      auto& buckets = expiry_buckets_[static_cast<size_t>(j)];
      auto it = buckets.begin();
      // A bucket with key K holds stamps in [K << shift, (K+1) << shift); it
      // can contain expirable entries only if its lowest stamp is < cutoff.
      while (it != buckets.end() &&
             (it->first << kExpiryBucketShift) < cutoff) {
        SlotList survivors;
        for (const std::uint32_t slot : it->second) {
          Entry& e = at(static_cast<int>(slot), in);
          if (!e.valid || e.bucket != it->first) continue;  // stale reference
          if (e.stamp >= cutoff) {  // straddling bucket: not old enough yet
            survivors.push_back(slot);
            continue;
          }
          e.valid = false;
          e.bucket = kNoExpiryBucket;
          --valid_by_port_[static_cast<size_t>(j)];
          ++expired;
          on_expire(static_cast<int>(slot), in);
        }
        if (survivors.empty()) {
          it = buckets.erase(it);
        } else {
          it->second = std::move(survivors);
          ++it;
        }
      }
    }
    return expired;
  }

  /// Enable/disable the expiry-bucket index. Routers disable it when the
  /// reservation lease is off so reserve/refresh carry no bookkeeping;
  /// enabling it (re)builds the index from the current valid entries.
  void set_expiry_tracking(bool on);

  /// Some input holds `out` at the slot of `cycle`? Returns that input.
  std::optional<Port> output_reserved_at(Cycle cycle, Port out) const;

  /// Fraction of (active slot, input) entries that are valid.
  double occupancy() const;
  int valid_entries() const {
    int total = 0;
    for (const int c : valid_by_port_) total += c;
    return total;
  }
  /// Valid entries under one input port — lets sweeps and audits skip a
  /// port's whole column in O(1).
  int valid_entries(Port in) const {
    return valid_by_port_[static_cast<size_t>(in)];
  }

  /// True if all entries [slot, slot+duration) for `in` are invalid —
  /// the NI-side pre-check before proposing a slot id for a setup.
  bool input_free(int slot, int duration, Port in) const;

  /// Clear all reservations.
  void reset();

  /// Double the active region (clears the table). No-op at capacity.
  /// Returns true if the size changed.
  bool grow();

  /// Set the active region explicitly (clears the table).
  void set_active_size(int active);

  /// Checkpoint: serialize active size, tracking mode and every valid entry
  /// (sparse — owner/stamp/out per valid slot). The expiry-bucket index is
  /// not serialized; restore rebuilds it, which preserves behaviour because
  /// expiry callbacks are commutative across entries (see expire_older_than).
  void save_state(StateWriter& w) const;
  /// Restores into a table of the same capacity; throws StateError on a
  /// structural mismatch (never aborts — a bad archive means "recompute").
  void restore_state(StateReader& r);

 private:
  /// 1024-cycle expiry buckets, matching the routers' sweep cadence.
  static constexpr int kExpiryBucketShift = 10;
  static constexpr Cycle kNoExpiryBucket = kCycleNever;

  struct Entry {
    bool valid = false;
    Port out = Port::Local;
    PacketId owner = 0;  ///< id of the setup that wrote the entry
    Cycle stamp = 0;     ///< last reserve/traversal cycle (lease clock)
    /// Expiry bucket this entry was last indexed under (kNoExpiryBucket =
    /// none); detects stale bucket references after release/re-stamp.
    Cycle bucket = kNoExpiryBucket;
  };
  Entry& at(int slot, Port in) {
    return entries_[static_cast<size_t>(in)][static_cast<size_t>(slot)];
  }
  const Entry& at(int slot, Port in) const {
    return entries_[static_cast<size_t>(in)][static_cast<size_t>(slot)];
  }
  int wrap(int slot) const { return slot & (active_ - 1); }
  /// Index (or re-index) a just-stamped valid entry at (slot, in).
  void note_expiry(int slot, Port in, Entry& e) {
    if (!track_expiry_) return;
    const Cycle key = e.stamp >> kExpiryBucketShift;
    if (e.bucket == key) return;  // the existing reference still finds it
    e.bucket = key;
    expiry_buckets_[static_cast<size_t>(in)][key].push_back(
        static_cast<std::uint32_t>(slot));
  }

  int capacity_;
  int active_;
  /// One entry column per input port, each `capacity` slots long.
  std::array<std::vector<Entry>, kNumPorts> entries_;
  std::array<int, kNumPorts> valid_by_port_{};
  bool track_expiry_ = true;
  /// Per input port: stamp bucket -> slot indices, lazily validated.
  /// The ordered map keeps sweeps in deterministic ascending-bucket order;
  /// nodes and index storage are pool-backed because new stamp buckets keep
  /// appearing as simulated time advances — the one slot-table operation
  /// that would otherwise enter the allocator in steady state.
  using SlotList = std::vector<std::uint32_t, PoolAlloc<std::uint32_t>>;
  std::array<PooledMap<Cycle, SlotList>, kNumPorts> expiry_buckets_;
};

}  // namespace hybridnoc
