#include "tdm/hybrid_ni.hpp"

#include <algorithm>
#include <vector>

#include "common/pool.hpp"
#include "common/state_io.hpp"

namespace hybridnoc {

HybridNi::HybridNi(const NocConfig& cfg, NodeId id, const Mesh& mesh,
                   TdmController* ctrl)
    : NetworkInterface(cfg, id, mesh),
      dlt_(cfg.dlt_entries),
      ctrl_(ctrl),
      rng_(cfg.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(id) + 1) {
  HN_CHECK(ctrl_ != nullptr);
}

void HybridNi::attach_router(HybridRouter* r) {
  hrouter_ = r;
  r->set_ni_hooks(this);
}

bool HybridNi::idle() const {
  return NetworkInterface::idle() && cs_plan_.empty() &&
         delayed_config_.empty() && fault_teardowns_.empty() &&
         deferred_setups_.empty();
}

void HybridNi::reset_circuit_state() {
  HN_CHECK(cs_plan_.empty());
  connections_.clear();
  pending_.clear();
  pending_dsts_.clear();
  // Held-back config messages reference the wiped tables; a router would
  // discard them as stale anyway, so drop them at the source.
  delayed_config_.clear();
  // Deferred liveness teardowns and backed-off setups reference wiped
  // connections/pending entries; the reset reclaimed everything they would.
  fault_teardowns_.clear();
  deferred_setups_.clear();
  dlt_.clear();
  freq_.clear();
  cooldown_until_.clear();
}

std::vector<std::pair<int, PacketId>> HybridNi::connection_windows(
    NodeId dst) const {
  std::vector<std::pair<int, PacketId>> out;
  const auto it = connections_.find(dst);
  if (it == connections_.end()) return out;
  for (size_t i = 0; i < it->second.slots.size(); ++i) {
    out.emplace_back(it->second.slots[i], it->second.setup_ids[i]);
  }
  return out;
}

std::vector<NodeId> HybridNi::connection_dsts() const {
  std::vector<NodeId> out;
  out.reserve(connections_.size());
  for (const auto& [dst, conn] : connections_) out.push_back(dst);
  return out;
}

int HybridNi::connection_duration(NodeId dst) const {
  const auto it = connections_.find(dst);
  return it == connections_.end() ? 0 : it->second.duration;
}

void HybridNi::send(PacketPtr pkt, Cycle now) {
  HN_CHECK(pkt && pkt->src == id_);
  // Wake before any early return: a circuit-scheduled packet bypasses
  // NetworkInterface::send (and its wake), but still mutated freq_ — the NI
  // must tick this cycle so the policy epoch sees what the full sweep sees.
  sched_wake(now);
  if (pkt->created == 0) pkt->created = now;
  if (pkt->final_dst == kInvalidNode) pkt->final_dst = pkt->dst;
  // Admit before the circuit try: a circuit-scheduled packet bypasses
  // NetworkInterface::send, but must still be end-to-end tracked (and must
  // fail cleanly when its destination is partitioned off). e2e_admit is
  // idempotent, so the packet-switched fallback re-admitting is harmless.
  if (!pkt->is_config() && !e2e_admit(pkt, now)) return;
  if (!pkt->is_config() && pkt->cs_eligible && !frozen_ && ctrl_->cs_allowed()) {
    ++freq_[pkt->dst];
    if (try_circuit(pkt, now)) return;
    maybe_initiate_setup(pkt->dst, now, /*force=*/false);
  }
  NetworkInterface::send(std::move(pkt), now);
}

// ---------------------------------------------------------------------------
// Circuit transmission
// ---------------------------------------------------------------------------

std::optional<Cycle> HybridNi::find_start(int slot, int nflits, Cycle now) const {
  const int S = ctrl_->active_slots();
  // Earliest crossbar cycle congruent to `slot`, late enough that the first
  // injection-channel write lands strictly in a future NI tick.
  const Cycle base = now + 3;
  const std::int64_t rem =
      ((static_cast<std::int64_t>(slot) - static_cast<std::int64_t>(base % S)) % S +
       S) % S;
  Cycle c = base + static_cast<Cycle>(rem);
  for (int attempt = 0; attempt < 2; ++attempt, c += static_cast<Cycle>(S)) {
    bool free = true;
    for (int i = 0; i < nflits && free; ++i) {
      if (cs_plan_.contains(c - 2 + static_cast<Cycle>(i))) free = false;
    }
    if (free) return c;
  }
  return std::nullopt;
}

double HybridNi::ps_latency_estimate(int hops) const {
  return 5.0 * hops + 6.0 + cfg_.ps_data_flits +
         cfg_.congestion_gain * ewma_inject_delay();
}

bool HybridNi::decide_cs(const PacketPtr& pkt, double cs_latency, int hops) const {
  if (pkt->slack >= 0) {
    // Section V-A2: circuit-switch when the message's slack exceeds the
    // overall circuit-switched transmission latency.
    return cs_latency <= static_cast<double>(pkt->slack);
  }
  return cs_latency <= cfg_.cs_latency_advantage * ps_latency_estimate(hops);
}

HybridNi::CsAttempt HybridNi::schedule_cs(const PacketPtr& pkt,
                                          const std::vector<int>& slots,
                                          int cs_hops, Cycle extra_latency,
                                          int share_in, int share_out,
                                          Cycle now) {
  // Only a hopping-off message needs the extra header flit (Table I:
  // "circuit-switched packet when vicinity-sharing applied"); packets
  // riding straight to the path destination stay at 4 flits and leave the
  // reservation's fifth slot to time-slot stealing.
  const int nflits =
      cfg_.cs_data_flits + (pkt->final_dst != pkt->dst ? 1 : 0);
  HN_CHECK(nflits <= cfg_.reservation_duration());
  // Earliest feasible window among the pair's reservations.
  std::optional<Cycle> start;
  for (const int slot : slots) {
    const auto s = find_start(slot, nflits, now);
    if (s && (!start || *s < *start)) start = s;
  }
  if (!start) {
    ++cs_rejected_no_window_;
    return CsAttempt::NoWindow;
  }
  const double cs_latency =
      static_cast<double>(*start - now) + 2.0 * cs_hops + 2.0 + (nflits - 1) +
      static_cast<double>(extra_latency);
  if (!decide_cs(pkt, cs_latency, cs_hops)) {
    ++cs_rejected_latency_;
    return CsAttempt::NotWorth;
  }

  pkt->switching = Switching::Circuit;
  pkt->num_flits = nflits;
  pkt->share_in_port = share_in;
  pkt->share_out_port = share_out;
  // Commit point: every planned flit carries a raw pointer; the flight
  // anchor keeps the packet alive until all of them are terminally consumed
  // (ejected, evaporated, or cancelled by a bounce).
  begin_flight(pkt);
  const bool plan_was_empty = cs_plan_.empty();
  for (int i = 0; i < nflits; ++i) {
    Flit f;
    f.pkt = pkt.get();
    f.seq = i;
    f.switching = Switching::Circuit;
    if (nflits == 1) {
      f.type = FlitType::HeadTail;
    } else if (i == 0) {
      f.type = FlitType::Head;
    } else if (i == nflits - 1) {
      f.type = FlitType::Tail;
    } else {
      f.type = FlitType::Body;
    }
    cs_plan_.emplace_unique(*start - 2 + static_cast<Cycle>(i), f);
  }
  note_cs_plan_change(plan_was_empty);
  if (!pkt->reinjected) ++data_packets_sent_;
  ++cs_packets_;
  // The transmission is committed to reserved slots: arm the end-to-end
  // retransmission timer from the head flit's planned launch cycle.
  if (cfg_.e2e_recovery) e2e_launched(pkt, *start - 2);
  return CsAttempt::Scheduled;
}

bool HybridNi::try_circuit(const PacketPtr& pkt, Cycle now) {
  const NodeId dst = pkt->dst;

  // 1. Dedicated connection.
  if (auto it = connections_.find(dst); it != connections_.end()) {
    // A doomed circuit (liveness verdict reached, teardown deferred) must
    // not take new traffic: packet-switch until the path is rebuilt.
    if (it->second.doomed) return false;
    const CsAttempt r = schedule_cs(pkt, it->second.slots,
                                    mesh_.hop_distance(id_, dst), 0, -1, -1, now);
    if (r == CsAttempt::Scheduled) {
      it->second.last_used = now;
      return true;
    }
    if (r == CsAttempt::NoWindow) {
      // The pair's reservations are oversubscribed: ask for an additional
      // window (finer time-division granularity, Section II-C).
      maybe_initiate_setup(dst, now, /*force=*/true, /*supplement=*/true);
    }
    return false;  // path exists but no usable slot now -> packet-switch
  }

  // 2. Hitchhike a path through this node toward the same destination.
  // (The DLT is cleared on every table reset, so entries are always from
  // the current generation; the stored generation is the belt-and-braces
  // guard against riding a wiped reservation.)
  if (cfg_.hitchhiker_sharing) {
    if (auto e = dlt_.find(dst);
        e && e->generation == ctrl_->table_generation()) {
      if (schedule_cs(pkt, {e->slot}, mesh_.hop_distance(id_, dst), 0,
                      static_cast<int>(e->in), static_cast<int>(e->out),
                      now) == CsAttempt::Scheduled) {
        dlt_.touch(dst, now);
        ++hitchhike_packets_;
        return true;
      }
    }
  }

  // 3. Vicinity: ride an own connection to a neighbour of dst, hop off
  // there into the packet-switched network (Section III-A2).
  if (cfg_.vicinity_sharing) {
    // One packet-switched hop after hop-off.
    const Cycle hopoff_cost = static_cast<Cycle>(5 + 6 + cfg_.ps_data_flits);
    for (auto& [cdst, conn] : connections_) {
      if (conn.doomed || !mesh_.adjacent(cdst, dst)) continue;
      pkt->dst = cdst;  // network destination is the hop-off node
      if (schedule_cs(pkt, conn.slots, mesh_.hop_distance(id_, cdst),
                      hopoff_cost, -1, -1, now) == CsAttempt::Scheduled) {
        conn.last_used = now;
        ++vicinity_packets_;
        return true;
      }
      pkt->dst = dst;
      // Source-side contention: bump the reservation's 2-bit counter; at
      // '10' request a dedicated path (Section III-A2).
      if (conn.vicinity_fail < 3) ++conn.vicinity_fail;
      if (conn.vicinity_fail >= 2) {
        conn.vicinity_fail = 0;
        maybe_initiate_setup(dst, now, /*force=*/true);
      }
      break;
    }
    if (pkt->dst != dst) pkt->dst = dst;

    // 4. Combined hitchhiker + vicinity: ride a DLT path whose destination
    // is adjacent to dst.
    if (cfg_.hitchhiker_sharing) {
      if (auto e = dlt_.find_adjacent(
              dst, [this](NodeId a, NodeId b) { return mesh_.adjacent(a, b); });
          e && e->generation == ctrl_->table_generation()) {
        pkt->dst = e->dest;
        if (schedule_cs(pkt, {e->slot}, mesh_.hop_distance(id_, e->dest),
                        hopoff_cost, static_cast<int>(e->in),
                        static_cast<int>(e->out),
                        now) == CsAttempt::Scheduled) {
          dlt_.touch(e->dest, now);
          ++hitchhike_packets_;
          ++vicinity_packets_;
          return true;
        }
        pkt->dst = dst;
      }
    }
  }
  return false;
}

bool HybridNi::circuit_inject(Cycle now) {
  epoch_tick(now);
  while (!delayed_config_.empty() && delayed_config_.front().first <= now) {
    auto p = std::move(delayed_config_.front().second);
    delayed_config_.pop_front();
    ctrl_->config_launched();
    NetworkInterface::send(std::move(p), now);
  }
  while (!fault_teardowns_.empty() && fault_teardowns_.front().first <= now) {
    const NodeId dst = fault_teardowns_.front().second;
    fault_teardowns_.pop_front();
    execute_fault_teardown(dst, now);
  }
  while (!deferred_setups_.empty() && deferred_setups_.front().first <= now) {
    const DeferredSetup d = deferred_setups_.front().second;
    deferred_setups_.pop_front();
    pending_dsts_.erase(d.dst);
    if (frozen_ || !ctrl_->cs_allowed()) {
      // The world changed while we backed off; give up like an exhausted
      // retry would.
      ++setup_give_ups_;
      cooldown_until_[d.dst] =
          now + 4 * static_cast<Cycle>(cfg_.policy_epoch_cycles);
      continue;
    }
    send_setup(d.dst, d.retries, now, d.avoid_slot);
  }
  // The plan is cycle-sorted and never missed (checked below), so the only
  // candidate is the front entry — one compare per tick, no lookup.
  if (cs_plan_.empty() || cs_plan_.front().first != now) {
    HN_CHECK_MSG(cs_plan_.empty() || cs_plan_.front().first > now,
                 "missed circuit injection slot");
    return false;
  }
  Flit f = cs_plan_.front().second;
  cs_plan_.pop_front();
  note_cs_plan_change(/*was_empty=*/false);
  if (f.is_head() && f.pkt->is_hitchhiker()) {
    // Re-validate the shared entry before committing the packet; the ride
    // may have been torn down since scheduling.
    if (!hrouter_->share_entry_ok(now + 2,
                                  static_cast<Port>(f.pkt->share_in_port),
                                  static_cast<Port>(f.pkt->share_out_port))) {
      // Bounce while this head's flight count still pins the packet, then
      // consume it — the last of the packet's flits to go.
      bounce_packet(f.pkt, f.pkt->dst, now);
      (void)consume_flit(f.pkt);
      return false;  // cycle goes to packet-switched traffic
    }
  }
  if (f.is_head()) {
    f.pkt->injected = now;
  }
  ++cs_data_flits_;
  ++flits_by_class_[static_cast<size_t>(f.pkt->traffic_class)];
  ctrl_->cs_flit_launched();
  inject_->send(std::move(f), now);
  return true;
}

void HybridNi::bounce_packet(Packet* pkt, NodeId ride_dest, Cycle now) {
  // Cancel flits not yet on the wire, consuming each one's flight count.
  // The caller still holds the head's count, so the anchor cannot drop and
  // `pkt` stays valid through the rest of this function.
  const bool plan_was_empty = cs_plan_.empty();
  cs_plan_.erase_if([&](Cycle, const Flit& f) {
    if (f.pkt != pkt) return false;
    (void)consume_flit(f.pkt);
    return true;
  });
  note_cs_plan_change(plan_was_empty);
  ++hitchhike_bounces_;
  if (dlt_.record_failure(ride_dest)) {
    // Counter saturated at '10': stop sharing, ask for a dedicated path.
    maybe_initiate_setup(pkt->final_dst, now, /*force=*/true);
  }
  auto copy = make_packet();
  // The bounced message keeps its identity: none of its circuit flits were
  // forwarded (the head bounced at the hop-on crossbar and stray body flits
  // evaporate there), so no partial assembly exists anywhere.
  copy->id = pkt->id;
  copy->src = id_;
  copy->dst = pkt->final_dst;
  copy->final_dst = pkt->final_dst;
  copy->num_flits = cfg_.ps_data_flits;
  copy->created = pkt->created;
  copy->traffic_class = pkt->traffic_class;
  copy->payload = pkt->payload;
  copy->slack = pkt->slack;
  copy->cs_eligible = false;
  copy->reinjected = true;
  // Keep the end-to-end identity: the destination's dedup key and the ack's
  // return address must match what the origin tracked.
  copy->origin = pkt->origin;
  copy->retx_of = pkt->retx_of;
  send_priority(std::move(copy), now);
}

// ---------------------------------------------------------------------------
// Path configuration protocol endpoints
// ---------------------------------------------------------------------------

PacketPtr HybridNi::make_config(MsgType type, NodeId dst, Cycle now) const {
  auto p = make_packet();
  p->id = const_cast<HybridNi*>(this)->fresh_packet_id();
  p->type = type;
  p->src = id_;
  p->dst = dst;
  p->final_dst = dst;
  p->num_flits = cfg_.config_flits;
  p->traffic_class = TrafficClass::Config;
  p->cs_eligible = false;
  p->created = now;
  p->table_gen = ctrl_->table_generation();
  return p;
}

void HybridNi::dispatch_config(PacketPtr p, Cycle now) {
  using Action = ConfigFaultDecision::Action;
  if (fault_hook_) {
    const ConfigFaultDecision d = fault_hook_(p, now);
    switch (d.action) {
      case Action::Drop:
        // The message vanishes before it is ever counted in flight; the
        // protocol's timeout/lease machinery must recover on its own.
        return;
      case Action::Delay:
        delayed_config_.emplace(now + std::max<Cycle>(d.delay, 1),
                                std::move(p));
        return;
      case Action::Duplicate: {
        // A second, independent walker with the same id and payload —
        // routers mutate slot_id in place, so it must be a distinct object.
        auto clone = make_packet(*p);
        ctrl_->config_launched();
        NetworkInterface::send(std::move(clone), now);
        break;
      }
      case Action::None:
        break;
    }
  }
  ctrl_->config_launched();
  NetworkInterface::send(std::move(p), now);
}

bool HybridNi::window_installed(NodeId dst, PacketId setup_id) const {
  const auto it = connections_.find(dst);
  if (it == connections_.end()) return false;
  const auto& ids = it->second.setup_ids;
  return std::find(ids.begin(), ids.end(), setup_id) != ids.end();
}

void HybridNi::expire_pending(Cycle now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.sent_at <= cfg_.pending_setup_timeout_cycles) {
      ++it;
      continue;
    }
    // The setup or its ack was lost. Reclaim whatever prefix the setup
    // reserved (the owner tag makes this safe even if the setup is merely
    // late: it releases only that setup's entries) and unblock the
    // destination so traffic toward it can request a fresh path.
    const PendingSetup p = it->second;
    const PacketId setup_id = it->first;
    it = pending_.erase(it);
    pending_dsts_.erase(p.dst);
    ++pending_timeouts_;
    send_teardown(p.dst, p.slot, setup_id, now);
  }
}

void HybridNi::maybe_initiate_setup(NodeId dst, Cycle now, bool force,
                                    bool supplement) {
  if (frozen_ || !ctrl_->cs_allowed()) return;
  if (dst == id_ || pending_dsts_.count(dst)) return;
  if (supplement) {
    const auto it = connections_.find(dst);
    if (it == connections_.end() ||
        static_cast<int>(it->second.slots.size()) >= cfg_.max_windows_per_pair) {
      return;
    }
    // Breadth before depth: when the local table is crowded, leave the
    // remaining slots to pairs that have no circuit at all.
    if (hrouter_ && hrouter_->slots().occupancy() > 0.5) return;
  } else if (connections_.count(dst)) {
    return;
  }
  if (auto it = cooldown_until_.find(dst);
      it != cooldown_until_.end() && now < it->second) {
    return;
  }
  if (!force && freq_[dst] < cfg_.path_freq_threshold) return;

  // "Once a connection has been idled for a long period, it becomes the
  // candidate to be destroyed when new setup requests come in": free local
  // slots by retiring the idlest connection when the table is crowded.
  if (hrouter_ && hrouter_->slots().occupancy() > 0.5 && !connections_.empty()) {
    auto idlest = connections_.begin();
    for (auto it = connections_.begin(); it != connections_.end(); ++it) {
      if (it->second.last_used < idlest->second.last_used) idlest = it;
    }
    if (now - idlest->second.last_used >
        static_cast<Cycle>(cfg_.policy_epoch_cycles)) {
      for (size_t i = 0; i < idlest->second.slots.size(); ++i) {
        send_teardown(idlest->first, idlest->second.slots[i],
                      idlest->second.setup_ids[i], now);
      }
      connections_.erase(idlest);
    }
  }
  send_setup(dst, 0, now);
}

int HybridNi::choose_setup_slot(int duration, int avoid_slot) {
  const int S = ctrl_->active_slots();
  // Fallback draw first, then up to 8 candidates preferring a free local
  // input — the draw order matters for run-to-run reproducibility.
  int slot =
      static_cast<int>(rng_.uniform_int(static_cast<std::uint64_t>(S)));
  if (slot == avoid_slot) slot = -1;  // a retry must pick a different slot
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int cand =
        static_cast<int>(rng_.uniform_int(static_cast<std::uint64_t>(S)));
    if (cand == avoid_slot) continue;
    if (slot < 0) slot = cand;
    if (!hrouter_ || hrouter_->local_input_free(cand, duration)) {
      return cand;
    }
  }
  if (slot < 0) {
    // Every draw hit avoid_slot: pick a distinct slot directly (S >= 4, so
    // one always exists).
    slot = (avoid_slot + 1 +
            static_cast<int>(
                rng_.uniform_int(static_cast<std::uint64_t>(S - 1)))) %
           S;
  }
  return slot;
}

void HybridNi::send_setup(NodeId dst, int retries, Cycle now, int avoid_slot) {
  const int dur = cfg_.reservation_duration();
  const int slot = choose_setup_slot(dur, avoid_slot);
  auto p = make_config(MsgType::SetupRequest, dst, now);
  p->slot_id = slot;
  p->duration = dur;
  pending_[p->id] = {dst, slot, retries, now};
  pending_dsts_.insert(dst);
  p->payload = p->id;
  ++setups_sent_;
  dispatch_config(std::move(p), now);
}

void HybridNi::send_teardown(NodeId dst, int slot, PacketId owner, Cycle now,
                             NodeId stop_at) {
  if (stop_at == id_) return;  // setup failed at our own router: nothing reserved
  auto p = make_config(MsgType::Teardown, dst, now);
  p->slot_id = slot;
  p->duration = cfg_.reservation_duration();
  p->teardown_stop = stop_at;
  p->payload = owner;
  dispatch_config(std::move(p), now);
}

void HybridNi::handle_config(const PacketPtr& pkt, Cycle now) {
  ctrl_->config_retired();
  if (pkt->table_gen != ctrl_->table_generation()) {
    // The message was created under a slot-table generation that a dynamic
    // resize has since wiped: every reservation it references is gone, and
    // its slot arithmetic used the old active size. Discard it — the
    // pending/connection state it would have updated was cleared by the
    // reset as well.
    ++stale_config_drops_;
    return;
  }
  switch (pkt->type) {
    case MsgType::SetupRequest: {
      // The setup walked the whole path: every hop is reserved. Acknowledge.
      auto ack = make_config(MsgType::AckSuccess, pkt->src, now);
      ack->payload = pkt->payload;
      ack->slot_id = pkt->slot_id;  // slot after the destination router
      ack->duration = pkt->duration;
      // The ack vouches for reservations made under the *setup's*
      // generation; carry it so the source can tell whether they survived.
      ack->table_gen = pkt->table_gen;
      dispatch_config(std::move(ack), now);
      break;
    }
    case MsgType::AckSuccess: {
      const auto it = pending_.find(pkt->payload);
      const int S = ctrl_->active_slots();
      const int hops = mesh_.hop_distance(id_, pkt->src);
      // Reconstruct the source-router slot from the destination-side slot:
      // the setup incremented by 2 at each of hops+1 routers. The generation
      // fence above guarantees S is the same active size the setup used, so
      // the arithmetic is sound.
      const int src_slot =
          (pkt->slot_id - 2 * (hops + 1)) & (S - 1);
      if (it == pending_.end()) {
        if (window_installed(pkt->src, pkt->payload)) {
          // Duplicate of an ack we already processed; the window is live.
          ++duplicate_acks_;
          break;
        }
        // Orphaned ack (pending state timed out or was lost): release the
        // path we no longer want. The owner tag confines the teardown to
        // that setup's entries.
        ++orphan_ack_teardowns_;
        send_teardown(pkt->src, src_slot, pkt->payload, now);
        break;
      }
      if (src_slot != it->second.slot) {
        // The ack's slot walk disagrees with what we recorded — the message
        // is damaged or mis-sequenced. Do not install a connection from it;
        // reclaim via the recorded slot and let the source retry later.
        const PendingSetup p = it->second;
        pending_.erase(it);
        pending_dsts_.erase(p.dst);
        send_teardown(p.dst, p.slot, pkt->payload, now);
        break;
      }
      Connection& conn = connections_[it->second.dst];
      conn.slots.push_back(it->second.slot);
      conn.setup_ids.push_back(pkt->payload);
      conn.duration = pkt->duration;
      conn.last_used = now;
      pending_dsts_.erase(it->second.dst);
      pending_.erase(it);
      ctrl_->record_setup_success();
      break;
    }
    case MsgType::AckFailure: {
      const auto it = pending_.find(pkt->payload);
      if (it == pending_.end()) break;
      const PendingSetup p = it->second;
      pending_.erase(it);
      pending_dsts_.erase(p.dst);
      ++setup_failures_;
      ctrl_->record_setup_failure();
      // Destroy the partially reserved prefix (Section II-B), stopping at
      // the router where the setup failed (the failure ack's source).
      send_teardown(p.dst, p.slot, pkt->payload, now, pkt->src);
      // ...and re-send with a different slot id, or back off.
      if (p.retries < cfg_.max_setup_retries && !frozen_ && ctrl_->cs_allowed()) {
        if (cfg_.setup_backoff_base_cycles > 0) {
          // Capped exponential backoff with seeded jitter before re-probing:
          // immediate retries can livelock two NIs into endlessly re-picking
          // slots the other just claimed. The destination stays blocked in
          // pending_dsts_ so no competing setup starts meanwhile.
          Cycle wait = std::min<Cycle>(
              cfg_.setup_backoff_base_cycles
                  << std::min(p.retries, 20),
              cfg_.setup_backoff_cap_cycles);
          wait += rng_.uniform_int(wait / 4 + 1);
          pending_dsts_.insert(p.dst);
          deferred_setups_.emplace(
              now + wait, DeferredSetup{p.dst, p.retries + 1, p.slot});
        } else {
          send_setup(p.dst, p.retries + 1, now, /*avoid_slot=*/p.slot);
        }
      } else {
        ++setup_give_ups_;
        cooldown_until_[p.dst] =
            now + 4 * static_cast<Cycle>(cfg_.policy_epoch_cycles);
      }
      break;
    }
    case MsgType::Teardown:
      break;  // path ending at this node was destroyed; nothing to track
    case MsgType::Data:
      HN_CHECK_MSG(false, "data packet in config handler");
  }
}

void HybridNi::handle_delivery(const PacketPtr& pkt, Cycle now) {
  if (pkt->final_dst != id_) {
    // Vicinity hop-off (Section III-A2): continue packet-switched.
    auto copy = make_packet();
    copy->id = pkt->id;
    copy->src = id_;
    copy->dst = pkt->final_dst;
    copy->final_dst = pkt->final_dst;
    copy->num_flits = cfg_.ps_data_flits;
    copy->created = pkt->created;
    copy->traffic_class = pkt->traffic_class;
    copy->payload = pkt->payload;
    copy->slack = pkt->slack;
    copy->cs_eligible = false;
    copy->reinjected = true;
    // Keep the end-to-end identity across the hop-off re-injection.
    copy->origin = pkt->origin;
    copy->retx_of = pkt->retx_of;
    ++vicinity_hopoffs_;
    send_priority(std::move(copy), now);
    return;
  }
  deliver(pkt, now);
}

void HybridNi::on_eject_flit(const Flit& flit, Cycle now) {
  (void)now;
  if (flit.switching == Switching::Circuit) ctrl_->cs_flit_retired();
}

// ---------------------------------------------------------------------------
// Circuit liveness (end-to-end recovery feedback)
// ---------------------------------------------------------------------------

void HybridNi::on_e2e_retx(const PacketPtr& clone, Cycle now) {
  const auto it = connections_.find(clone->final_dst);
  if (it == connections_.end() || it->second.doomed) return;
  if (++it->second.fail_streak < cfg_.cs_fail_threshold) return;
  // Liveness verdict: this many consecutive unacknowledged transmissions
  // toward a connected destination means the circuit's path (or the ack's
  // way back) crosses a failed link. Tear the path down and rebuild it over
  // a fault-aware route — but only once every already-planned circuit flit
  // has launched, or the injection-slot bookkeeping would see flits for a
  // reservation the teardown already released.
  it->second.doomed = true;
  ++cs_fault_teardowns_;
  Cycle last = now;
  for (const auto& [cyc, f] : cs_plan_) {
    if (f.pkt->dst == clone->final_dst && cyc > last) last = cyc;
  }
  fault_teardowns_.emplace(last + 1, clone->final_dst);
}

void HybridNi::on_e2e_acked(NodeId dst, Cycle now) {
  (void)now;
  const auto it = connections_.find(dst);
  if (it != connections_.end()) it->second.fail_streak = 0;
}

void HybridNi::on_packet_squashed(const PacketPtr& pkt, Cycle now) {
  (void)now;
  // A config message that assembled CRC-dirty is squashed before
  // handle_config could run; retire it with the controller so the
  // config-in-flight ledger does not leak.
  if (pkt->is_config()) ctrl_->config_retired();
}

void HybridNi::execute_fault_teardown(NodeId dst, Cycle now) {
  const auto it = connections_.find(dst);
  if (it == connections_.end()) return;  // retired by other means meanwhile
  // Re-defer while circuit flits toward dst are still planned (a new plan
  // cannot appear — the connection is doomed — but one scheduled just
  // before the verdict may stretch past the originally computed cycle).
  Cycle last = 0;
  for (const auto& [cyc, f] : cs_plan_) {
    if (f.pkt->dst == dst && cyc > last) last = cyc;
  }
  if (last >= now) {
    fault_teardowns_.emplace(last + 1, dst);
    return;
  }
  const Connection conn = it->second;
  connections_.erase(it);
  for (size_t i = 0; i < conn.slots.size(); ++i) {
    send_teardown(dst, conn.slots[i], conn.setup_ids[i], now);
  }
  // The teardown travels packet-switched over the fault-aware route; hops
  // beyond a dead link never see it and their entries fall to the
  // reservation-lease sweep. Clear any cooldown and request a fresh path
  // immediately — route_adaptive now excludes the failed link, so the new
  // setup walks a healthy route.
  cooldown_until_.erase(dst);
  maybe_initiate_setup(dst, now, /*force=*/true);
}

// ---------------------------------------------------------------------------
// Hooks from the co-located router
// ---------------------------------------------------------------------------

void HybridNi::on_setup_pass(NodeId dest, int slot, int duration, Port in,
                             Port out, Cycle now) {
  // The setup already passed the router's generation fence, so the current
  // generation is the one its reservations were made under.
  dlt_.observe(dest, slot, duration, in, out, now, ctrl_->table_generation());
}

void HybridNi::on_teardown_pass(int slot, Port in, Cycle now) {
  (void)now;
  dlt_.invalidate_route(slot, in);
}

void HybridNi::on_circuit_use(int slot, Port in, Cycle now) {
  (void)now;
  dlt_.activate_route(slot, in);
}

void HybridNi::on_hitchhike_bounce(Packet* pkt, Cycle now) {
  bounce_packet(pkt, pkt->dst, now);
}

void HybridNi::collect_in_flight(std::vector<Packet*>& out) const {
  NetworkInterface::collect_in_flight(out);
  for (const auto& [cyc, f] : cs_plan_) {
    if (f.pkt) out.push_back(f.pkt);
  }
}

// ---------------------------------------------------------------------------

void HybridNi::epoch_tick(Cycle now) {
  if (now < epoch_start_ + static_cast<Cycle>(cfg_.policy_epoch_cycles)) return;
  epoch_start_ = now;
  freq_.clear();
  expire_pending(now);
  // Retire connections idle beyond the timeout.
  std::vector<NodeId>& idle_list = idle_scratch_;
  idle_list.clear();
  for (const auto& [dst, conn] : connections_) {
    if (now - conn.last_used > cfg_.path_idle_timeout) idle_list.push_back(dst);
  }
  for (const NodeId dst : idle_list) {
    const Connection& conn = connections_[dst];
    for (size_t i = 0; i < conn.slots.size(); ++i) {
      send_teardown(dst, conn.slots[i], conn.setup_ids[i], now);
    }
    connections_.erase(dst);
  }
}

void HybridNi::leakage_tick(Cycle now) {
  (void)now;
  if (cfg_.hitchhiker_sharing || cfg_.vicinity_sharing) {
    ++energy_.dlt_active_cycles;
    // dlt_accesses is refreshed from the DLT at query time (finalize_energy)
    // so sleeping through cycles cannot leave it stale.
  }
}

void HybridNi::accumulate_idle_energy(EnergyCounters& e,
                                      std::uint64_t ncycles) const {
  if (cfg_.hitchhiker_sharing || cfg_.vicinity_sharing)
    e.dlt_active_cycles += ncycles;
}

void HybridNi::finalize_energy(EnergyCounters& e) const {
  if (cfg_.hitchhiker_sharing || cfg_.vicinity_sharing)
    e.dlt_accesses = dlt_.accesses();
}

void HybridNi::align_epochs(Cycle now) {
  // Boundaries skipped while asleep were no-ops: the NI only sleeps across
  // one when freq_, pending_ and connections_ are all empty (see
  // sched_next_event), and an empty epoch_tick only advances epoch_start_.
  // The `now - 1` leaves a boundary landing exactly on the wake cycle for
  // this tick's epoch_tick to fire.
  const auto period = static_cast<Cycle>(cfg_.policy_epoch_cycles);
  if (now > epoch_start_)
    epoch_start_ += period * ((now - 1 - epoch_start_) / period);
}

Cycle HybridNi::sched_next_event(Cycle now) const {
  Cycle next = NetworkInterface::sched_next_event(now);
  // Slot-timed circuit injections and delayed (fault-injected) config
  // releases happen at exact cycles; waking late would trip the
  // missed-injection-slot check and diverge from the full sweep.
  if (!cs_plan_.empty()) next = std::min(next, cs_plan_.begin()->first);
  if (!delayed_config_.empty())
    next = std::min(next, delayed_config_.begin()->first);
  // Deferred fault teardowns and backed-off setup retries fire in
  // circuit_inject; their timers must wake the NI exactly on the dot so the
  // recovery sequence is identical under fast_forward.
  if (!fault_teardowns_.empty())
    next = std::min(next, std::max(fault_teardowns_.begin()->first, now + 1));
  if (!deferred_setups_.empty())
    next = std::min(next, std::max(deferred_setups_.begin()->first, now + 1));
  // Policy-epoch boundaries matter whenever they would do more than advance
  // epoch_start_: fold frequency counts, time out pending setups, or retire
  // idle connections.
  if (!freq_.empty() || !pending_.empty() || !connections_.empty()) {
    const auto period = static_cast<Cycle>(cfg_.policy_epoch_cycles);
    next = std::min(next,
                    epoch_start_ + period * ((now - epoch_start_) / period + 1));
  }
  return next;
}

void HybridNi::save_state(StateWriter& w) const {
  NetworkInterface::save_state(w);
  HN_CHECK_MSG(cs_plan_.empty() && delayed_config_.empty() &&
                   fault_teardowns_.empty() && deferred_setups_.empty(),
               "hybrid-NI checkpoint requires drained circuit plans");
  w.section("hybrid_ni");
  w.u64(connections_.size());
  for (const auto& [dst, conn] : connections_) {
    w.i32(dst);
    w.u64(conn.slots.size());
    for (const int s : conn.slots) w.i32(s);
    for (const PacketId id : conn.setup_ids) w.u64(id);
    w.i32(conn.duration);
    w.u64(conn.last_used);
    w.u8(conn.vicinity_fail);
    w.i32(conn.fail_streak);
    w.b(conn.doomed);
  }
  w.u64(pending_.size());
  for (const auto& [key, p] : pending_) {
    w.u64(key);
    w.i32(p.dst);
    w.i32(p.slot);
    w.i32(p.retries);
    w.u64(p.sent_at);
  }
  w.u64(pending_dsts_.size());
  for (const NodeId d : pending_dsts_) w.i32(d);
  // freq_/cooldown_until_ are lookup-only (never iterated), but their
  // archive bytes must still be layout-independent: sort before writing.
  std::vector<std::pair<NodeId, int>> freq(freq_.begin(), freq_.end());
  std::sort(freq.begin(), freq.end());
  w.u64(freq.size());
  for (const auto& [d, n] : freq) {
    w.i32(d);
    w.i32(n);
  }
  std::vector<std::pair<NodeId, Cycle>> cooldown(cooldown_until_.begin(),
                                                 cooldown_until_.end());
  std::sort(cooldown.begin(), cooldown.end());
  w.u64(cooldown.size());
  for (const auto& [d, c] : cooldown) {
    w.i32(d);
    w.u64(c);
  }
  dlt_.save_state(w);
  for (const std::uint64_t s : rng_.state()) w.u64(s);
  w.b(frozen_);
  w.u64(epoch_start_);
  w.u64(setups_sent_);
  w.u64(setup_failures_);
  w.u64(cs_packets_);
  w.u64(hitchhike_packets_);
  w.u64(vicinity_packets_);
  w.u64(hitchhike_bounces_);
  w.u64(vicinity_hopoffs_);
  w.u64(cs_rejected_no_window_);
  w.u64(cs_rejected_latency_);
  w.u64(stale_config_drops_);
  w.u64(pending_timeouts_);
  w.u64(orphan_ack_teardowns_);
  w.u64(duplicate_acks_);
  w.u64(cs_fault_teardowns_);
  w.u64(setup_give_ups_);
}

void HybridNi::restore_state(StateReader& r) {
  NetworkInterface::restore_state(r);
  r.section("hybrid_ni");
  connections_.clear();
  const std::uint64_t nconn = r.u64();
  for (std::uint64_t i = 0; i < nconn; ++i) {
    const NodeId dst = r.i32();
    if (!mesh_.valid(dst)) throw StateError("connection destination invalid");
    Connection conn;
    const std::uint64_t nslots = r.u64();
    if (nslots > static_cast<std::uint64_t>(cfg_.max_windows_per_pair)) {
      throw StateError("connection window count out of range");
    }
    conn.slots.resize(static_cast<size_t>(nslots));
    conn.setup_ids.resize(static_cast<size_t>(nslots));
    for (int& s : conn.slots) s = r.i32();
    for (PacketId& id : conn.setup_ids) id = r.u64();
    conn.duration = r.i32();
    conn.last_used = r.u64();
    conn.vicinity_fail = r.u8();
    conn.fail_streak = r.i32();
    conn.doomed = r.b();
    connections_.emplace(dst, std::move(conn));
  }
  pending_.clear();
  const std::uint64_t npend = r.u64();
  for (std::uint64_t i = 0; i < npend; ++i) {
    const std::uint64_t key = r.u64();
    PendingSetup p;
    p.dst = r.i32();
    p.slot = r.i32();
    p.retries = r.i32();
    p.sent_at = r.u64();
    pending_.emplace(key, p);
  }
  pending_dsts_.clear();
  const std::uint64_t ndsts = r.u64();
  for (std::uint64_t i = 0; i < ndsts; ++i) pending_dsts_.insert(r.i32());
  freq_.clear();
  const std::uint64_t nfreq = r.u64();
  for (std::uint64_t i = 0; i < nfreq; ++i) {
    const NodeId d = r.i32();
    freq_[d] = r.i32();
  }
  cooldown_until_.clear();
  const std::uint64_t ncool = r.u64();
  for (std::uint64_t i = 0; i < ncool; ++i) {
    const NodeId d = r.i32();
    cooldown_until_[d] = r.u64();
  }
  dlt_.restore_state(r);
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& s : rng_state) s = r.u64();
  if (!(rng_state[0] | rng_state[1] | rng_state[2] | rng_state[3])) {
    throw StateError("all-zero hybrid-NI rng state");
  }
  rng_.set_state(rng_state);
  frozen_ = r.b();
  epoch_start_ = r.u64();
  setups_sent_ = r.u64();
  setup_failures_ = r.u64();
  cs_packets_ = r.u64();
  hitchhike_packets_ = r.u64();
  vicinity_packets_ = r.u64();
  hitchhike_bounces_ = r.u64();
  vicinity_hopoffs_ = r.u64();
  cs_rejected_no_window_ = r.u64();
  cs_rejected_latency_ = r.u64();
  stale_config_drops_ = r.u64();
  pending_timeouts_ = r.u64();
  orphan_ack_teardowns_ = r.u64();
  duplicate_acks_ = r.u64();
  cs_fault_teardowns_ = r.u64();
  setup_give_ups_ = r.u64();
}

}  // namespace hybridnoc
