#include "tdm/controller.hpp"

#include "common/state_io.hpp"

namespace hybridnoc {

TdmController::TdmController(const NocConfig& cfg)
    : cfg_(cfg),
      active_slots_(cfg.dynamic_slot_sizing ? cfg.initial_active_slots
                                            : cfg.slot_table_size) {}

void TdmController::tick(Cycle now) {
  if (reset_pending_) {
    // Only circuit-switched flits must drain: they physically need their
    // reserved slots. Config messages keep flowing — they carry the table
    // generation and are discarded wherever they arrive stale.
    const bool quiet =
        cs_in_flight_ == 0 && (!quiesced_check_ || quiesced_check_());
    if (quiet) {
      if (active_slots_ < cfg_.slot_table_size) {
        active_slots_ *= 2;
        ++resizes_;
      }
      ++generation_;
      if (reset_hook_) reset_hook_(active_slots_);
      reset_pending_ = false;
      failures_ = 0;
      successes_ = 0;
      epoch_start_ = now;
    }
    return;
  }

  const auto period = static_cast<Cycle>(cfg_.policy_epoch_cycles);
  // Re-anchor after fast-forwarded idle stretches. Skipped boundaries were
  // no-ops: next_event() pins the network to every boundary with non-zero
  // counters or an armed resize heuristic, so anything skipped would only
  // have folded zeros and advanced epoch_start_. The `now - 1` keeps a
  // boundary landing exactly on this cycle processable below.
  if (now > epoch_start_) epoch_start_ += period * ((now - 1 - epoch_start_) / period);

  if (now < epoch_start_ + period) return;
  total_failures_ += failures_;
  total_successes_ += successes_;
  if (cfg_.dynamic_slot_sizing && active_slots_ < cfg_.slot_table_size &&
      failures_ >= static_cast<std::uint64_t>(cfg_.resize_failure_threshold)) {
    reset_pending_ = true;  // quiesce, then grow
  }
  failures_ = 0;
  successes_ = 0;
  epoch_start_ = now;
}

Cycle TdmController::next_event(Cycle now) const {
  // Pending reset: poll quiescence every cycle, like the per-cycle tick.
  if (reset_pending_) return now + 1;
  const bool boundary_matters =
      failures_ > 0 || successes_ > 0 ||
      (cfg_.dynamic_slot_sizing && active_slots_ < cfg_.slot_table_size &&
       failures_ >= static_cast<std::uint64_t>(cfg_.resize_failure_threshold));
  if (!boundary_matters) return kCycleNever;
  const auto period = static_cast<Cycle>(cfg_.policy_epoch_cycles);
  return epoch_start_ + period * ((now - epoch_start_) / period + 1);
}

void TdmController::save_state(StateWriter& w) const {
  HN_CHECK_MSG(cs_in_flight() == 0 && config_in_flight() == 0 &&
                   nis_with_cs_plan() == 0,
               "controller checkpoint requires a drained circuit fabric");
  w.section("tdm_controller");
  w.i32(active_slots_);
  w.u64(generation_);
  w.u64(failures_.load(std::memory_order_relaxed));
  w.u64(successes_.load(std::memory_order_relaxed));
  w.u64(total_failures_);
  w.u64(total_successes_);
  w.b(reset_pending_);
  w.u64(epoch_start_);
  w.i32(resizes_);
}

void TdmController::restore_state(StateReader& r) {
  r.section("tdm_controller");
  active_slots_ = r.i32();
  if (active_slots_ < 1 || active_slots_ > cfg_.slot_table_size) {
    throw StateError("controller active-slot count out of range");
  }
  generation_ = r.u64();
  failures_.store(r.u64(), std::memory_order_relaxed);
  successes_.store(r.u64(), std::memory_order_relaxed);
  total_failures_ = r.u64();
  total_successes_ = r.u64();
  reset_pending_ = r.b();
  epoch_start_ = r.u64();
  resizes_ = r.i32();
}

}  // namespace hybridnoc
