#include "tdm/controller.hpp"

namespace hybridnoc {

TdmController::TdmController(const NocConfig& cfg)
    : cfg_(cfg),
      active_slots_(cfg.dynamic_slot_sizing ? cfg.initial_active_slots
                                            : cfg.slot_table_size) {}

void TdmController::tick(Cycle now) {
  if (reset_pending_) {
    // Only circuit-switched flits must drain: they physically need their
    // reserved slots. Config messages keep flowing — they carry the table
    // generation and are discarded wherever they arrive stale.
    const bool quiet =
        cs_in_flight_ == 0 && (!quiesced_check_ || quiesced_check_());
    if (quiet) {
      if (active_slots_ < cfg_.slot_table_size) {
        active_slots_ *= 2;
        ++resizes_;
      }
      ++generation_;
      if (reset_hook_) reset_hook_(active_slots_);
      reset_pending_ = false;
      failures_ = 0;
      successes_ = 0;
      epoch_start_ = now;
    }
    return;
  }

  const auto period = static_cast<Cycle>(cfg_.policy_epoch_cycles);
  // Re-anchor after fast-forwarded idle stretches. Skipped boundaries were
  // no-ops: next_event() pins the network to every boundary with non-zero
  // counters or an armed resize heuristic, so anything skipped would only
  // have folded zeros and advanced epoch_start_. The `now - 1` keeps a
  // boundary landing exactly on this cycle processable below.
  if (now > epoch_start_) epoch_start_ += period * ((now - 1 - epoch_start_) / period);

  if (now < epoch_start_ + period) return;
  total_failures_ += failures_;
  total_successes_ += successes_;
  if (cfg_.dynamic_slot_sizing && active_slots_ < cfg_.slot_table_size &&
      failures_ >= static_cast<std::uint64_t>(cfg_.resize_failure_threshold)) {
    reset_pending_ = true;  // quiesce, then grow
  }
  failures_ = 0;
  successes_ = 0;
  epoch_start_ = now;
}

Cycle TdmController::next_event(Cycle now) const {
  // Pending reset: poll quiescence every cycle, like the per-cycle tick.
  if (reset_pending_) return now + 1;
  const bool boundary_matters =
      failures_ > 0 || successes_ > 0 ||
      (cfg_.dynamic_slot_sizing && active_slots_ < cfg_.slot_table_size &&
       failures_ >= static_cast<std::uint64_t>(cfg_.resize_failure_threshold));
  if (!boundary_matters) return kCycleNever;
  const auto period = static_cast<Cycle>(cfg_.policy_epoch_cycles);
  return epoch_start_ + period * ((now - epoch_start_) / period + 1);
}

}  // namespace hybridnoc
