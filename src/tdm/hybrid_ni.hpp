// Hybrid network interface: everything the paper puts at the source node.
//
//  * Frequently-communicating-pair detection (Section II-A): per-destination
//    packet counts over a policy epoch trigger circuit setup.
//  * The path configuration protocol's endpoint state machines
//    (Section II-B): pending setups, success/failure acks, retry with a
//    different slot id, teardown of failed or idle paths. Data is never
//    blocked on setup — packets go packet-switched while setup runs.
//  * Slot-timed circuit injection: flits are written so they hit the source
//    router's crossbar exactly in their reserved slots; the injection
//    channel's remaining cycles carry packet-switched traffic.
//  * The switching decision (Sections II-A / V-A2): slack-based for messages
//    carrying GPU slack, latency-estimate-based otherwise; messages whose
//    slot wait would hurt them stay packet-switched.
//  * Path sharing (Section III-A): hitchhiker (via the DLT) and vicinity
//    (via connections/DLT entries adjacent to the destination), with 2-bit
//    saturating failure counters, packet-switched fallback on contention and
//    dedicated-path escalation on saturation.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/pool.hpp"
#include "common/ring.hpp"
#include "common/rng.hpp"
#include "noc/network_interface.hpp"
#include "tdm/controller.hpp"
#include "tdm/dlt.hpp"
#include "tdm/hybrid_router.hpp"

namespace hybridnoc {

/// Fault-injection verdict for one outgoing config message (setup, teardown
/// or ack). Returned by a hook installed on the NI; used by the harness to
/// exercise the protocol's loss/duplication recovery paths.
struct ConfigFaultDecision {
  enum class Action : std::uint8_t { None, Drop, Delay, Duplicate };
  Action action = Action::None;
  Cycle delay = 0;  ///< injection delay in cycles (Delay only)
};
using ConfigFaultHook =
    std::function<ConfigFaultDecision(const PacketPtr&, Cycle)>;

class HybridNi : public NetworkInterface, public CircuitNiHooks {
 public:
  HybridNi(const NocConfig& cfg, NodeId id, const Mesh& mesh,
           TdmController* ctrl);

  /// Wire the co-located hybrid router (also installs the NI hooks on it).
  void attach_router(HybridRouter* r);

  void send(PacketPtr pkt, Cycle now) override;
  bool idle() const override;
  void set_policy_frozen(bool frozen) override { frozen_ = frozen; }

  /// Checkpoint: base NI state plus connection table, pending/deferred
  /// protocol state, frequency counters, DLT and the setup RNG. Requires
  /// idle() (no planned circuit flits, no held-back config messages).
  void save_state(StateWriter& w) const override;
  void restore_state(StateReader& r) override;

  /// Active-set scheduling: wakes for scheduled circuit injections, delayed
  /// config releases, and policy-epoch boundaries that are not no-ops.
  Cycle sched_next_event(Cycle now) const override;

  /// Install (or clear, with nullptr) the config-message fault injector.
  /// Every outgoing setup/teardown/ack is offered to the hook just before
  /// injection; the returned decision may drop it, delay it, or inject a
  /// duplicate copy alongside it.
  void set_config_fault_hook(ConfigFaultHook hook) {
    fault_hook_ = std::move(hook);
  }

  /// Drop all circuit state (slot-table reset, Section II-C). Only called
  /// when no circuit flit is planned or in flight.
  void reset_circuit_state();

  bool cs_plan_empty() const { return cs_plan_.empty(); }
  /// Any reservation windows held at this source? Cheap pre-check the
  /// network-wide audit uses to skip its walk on circuit-free networks.
  bool has_connections() const { return !connections_.empty(); }

  // CircuitNiHooks
  void on_setup_pass(NodeId dest, int slot, int duration, Port in, Port out,
                     Cycle now) override;
  void on_teardown_pass(int slot, Port in, Cycle now) override;
  void on_circuit_use(int slot, Port in, Cycle now) override;
  void on_hitchhike_bounce(Packet* pkt, Cycle now) override;

  /// Planned circuit flits hold flight references too; add them to the
  /// network teardown drain.
  void collect_in_flight(std::vector<Packet*>& out) const override;

  // --- introspection (tests, benches) ---
  int active_connections() const { return static_cast<int>(connections_.size()); }
  bool has_connection(NodeId dst) const { return connections_.count(dst) > 0; }
  const DestinationLookupTable& dlt() const { return dlt_; }
  std::uint64_t setups_sent() const { return setups_sent_; }
  std::uint64_t setup_failures() const { return setup_failures_; }
  std::uint64_t cs_packets() const { return cs_packets_; }
  std::uint64_t hitchhike_packets() const { return hitchhike_packets_; }
  std::uint64_t vicinity_packets() const { return vicinity_packets_; }
  std::uint64_t hitchhike_bounces() const { return hitchhike_bounces_; }
  std::uint64_t vicinity_hopoffs() const { return vicinity_hopoffs_; }
  /// Switching-decision outcomes for circuit attempts on existing paths.
  std::uint64_t cs_rejected_no_window() const { return cs_rejected_no_window_; }
  std::uint64_t cs_rejected_latency() const { return cs_rejected_latency_; }
  /// Config messages discarded at this NI because their table generation
  /// predated a slot-table reset.
  std::uint64_t stale_config_drops() const { return stale_config_drops_; }
  /// Pending setups abandoned because their ack never returned.
  std::uint64_t pending_timeouts() const { return pending_timeouts_; }
  /// Success acks with no pending entry that released an unwanted path.
  std::uint64_t orphan_ack_teardowns() const { return orphan_ack_teardowns_; }
  /// Success acks recognised as duplicates of an already-installed window.
  std::uint64_t duplicate_acks() const { return duplicate_acks_; }
  /// Circuits torn down by the liveness monitor (retransmission streak past
  /// cfg.cs_fail_threshold — the path crosses a failed link).
  std::uint64_t cs_fault_teardowns() const { return cs_fault_teardowns_; }
  /// Setup retries abandoned after exhausting max_setup_retries (the
  /// destination enters cooldown instead).
  std::uint64_t setup_give_ups() const { return setup_give_ups_; }
  /// Crossbar slots (and owning setup ids) of every reservation window this
  /// NI holds toward `dst` — consumed by the network-wide consistency audit.
  std::vector<std::pair<int, PacketId>> connection_windows(NodeId dst) const;
  std::vector<NodeId> connection_dsts() const;
  int connection_duration(NodeId dst) const;

 protected:
  bool circuit_inject(Cycle now) override;
  void handle_config(const PacketPtr& pkt, Cycle now) override;
  void handle_delivery(const PacketPtr& pkt, Cycle now) override;
  void on_eject_flit(const Flit& flit, Cycle now) override;
  void on_e2e_retx(const PacketPtr& clone, Cycle now) override;
  void on_e2e_acked(NodeId dst, Cycle now) override;
  void on_packet_squashed(const PacketPtr& pkt, Cycle now) override;
  void leakage_tick(Cycle now) override;
  void accumulate_idle_energy(EnergyCounters& e, std::uint64_t ncycles) const override;
  void align_epochs(Cycle now) override;
  void finalize_energy(EnergyCounters& e) const override;

 private:
  struct Connection {
    /// Crossbar slots (at this source router) of every reservation window
    /// this pair holds. Multiple windows = finer time-division granularity
    /// = more of the path's bandwidth (Section II-C).
    std::vector<int> slots;
    /// Id of the setup that reserved each window (same index as `slots`).
    /// Stamped into teardowns so they release only their own slot-table
    /// entries, and used to recognise duplicated success acks.
    std::vector<PacketId> setup_ids;
    int duration = 0;
    Cycle last_used = 0;
    std::uint8_t vicinity_fail = 0;  ///< 2-bit saturating counter
    /// Consecutive end-to-end retransmissions toward this destination (the
    /// missed-slot streak); cleared by any ack from there.
    int fail_streak = 0;
    /// Liveness verdict reached: no new circuit traffic is scheduled while
    /// the deferred teardown waits for already-planned flits to launch.
    bool doomed = false;
  };
  struct PendingSetup {
    NodeId dst = kInvalidNode;
    int slot = 0;
    int retries = 0;
    Cycle sent_at = 0;
  };
  struct DeferredSetup {
    NodeId dst = kInvalidNode;
    int retries = 0;
    int avoid_slot = -1;
  };

  enum class CsAttempt { Scheduled, NoWindow, NotWorth };

  /// Try to transmit `pkt` circuit-switched (own path, hitchhike, vicinity,
  /// or combined). Returns true if scheduled.
  bool try_circuit(const PacketPtr& pkt, Cycle now);
  /// Schedule a packet onto a circuit with reservation windows at `slots`
  /// (crossbar slots at this router); the earliest feasible window wins.
  /// `cs_hops` is the circuit's length in hops, `extra_latency` accounts for
  /// a vicinity hop-off. share_in/share_out < 0 for own paths.
  CsAttempt schedule_cs(const PacketPtr& pkt, const std::vector<int>& slots,
                        int cs_hops, Cycle extra_latency, int share_in,
                        int share_out, Cycle now);
  /// Earliest crossbar cycle >= now+2 congruent to `slot` with a free
  /// injection window for `nflits` consecutive cycles.
  std::optional<Cycle> find_start(int slot, int nflits, Cycle now) const;

  /// `force` bypasses the frequency threshold (used when a sharing failure
  /// counter saturates and a dedicated path must be requested).
  /// `supplement` requests an additional reservation window for an existing
  /// connection whose windows are oversubscribed (Section II-C granularity).
  void maybe_initiate_setup(NodeId dst, Cycle now, bool force,
                            bool supplement = false);
  /// `avoid_slot` >= 0 forces the draw away from that slot — a retry after a
  /// conflict must probe a *different* slot id (Section II-B).
  int choose_setup_slot(int duration, int avoid_slot);
  void send_setup(NodeId dst, int retries, Cycle now, int avoid_slot = -1);
  /// `owner` = id of the setup whose reservations the teardown may release
  /// (0 releases unconditionally). `stop_at` = the router the corresponding
  /// setup failed at (failure teardowns), kInvalidNode for full-path
  /// teardowns.
  void send_teardown(NodeId dst, int slot, PacketId owner, Cycle now,
                     NodeId stop_at = kInvalidNode);
  PacketPtr make_config(MsgType type, NodeId dst, Cycle now) const;
  /// Inject a config message, applying the fault hook (drop/delay/duplicate)
  /// if one is installed. The single exit point for all config traffic.
  void dispatch_config(PacketPtr p, Cycle now);
  /// Is `setup_id` the owner of an installed window toward `dst`?
  bool window_installed(NodeId dst, PacketId setup_id) const;
  /// Abandon pending setups whose ack is overdue; reclaims whatever prefix
  /// the lost setup reserved and unblocks the destination for new setups.
  void expire_pending(Cycle now);

  double ps_latency_estimate(int hops) const;
  bool decide_cs(const PacketPtr& pkt, double cs_latency, int hops) const;

  /// Cancel remaining planned flits and re-send the packet packet-switched.
  /// `ride_dest` is the shared path's destination (for the DLT counter).
  /// The caller must still hold the packet's head-flit flight count (it is
  /// consumed after this returns), so `pkt` stays valid throughout.
  void bounce_packet(Packet* pkt, NodeId ride_dest, Cycle now);

  /// Tear down the doomed connection to `dst` (all windows) and force a
  /// fresh setup over a fault-aware route. Re-defers itself while circuit
  /// flits toward `dst` are still planned.
  void execute_fault_teardown(NodeId dst, Cycle now);

  void epoch_tick(Cycle now);

  /// Keep the controller's NIs-with-planned-circuits gauge in sync after a
  /// cs_plan_ mutation: call with the pre-mutation emptiness. The gauge is
  /// what makes the reset-pending quiescence poll O(1).
  void note_cs_plan_change(bool was_empty) {
    const bool is_empty = cs_plan_.empty();
    if (was_empty != is_empty) {
      ctrl_->note_cs_plan_transition(is_empty ? -1 : 1);
    }
  }

  /// Ordered maps on purpose: both are iterated on behaviour-relevant paths
  /// (vicinity scan, idlest-connection search, epoch teardowns, pending
  /// expiry), and checkpoint/restore must reproduce the exact visit order —
  /// sorted iteration makes the order a function of the keys alone, not of
  /// hash-table insertion history. Pool-backed so the node churn (freq_
  /// resets every epoch, pending entries per setup) recycles fixed blocks
  /// instead of hitting the heap.
  PooledMap<NodeId, Connection> connections_;
  PooledMap<std::uint64_t, PendingSetup> pending_;
  PooledSet<NodeId> pending_dsts_;
  PooledUMap<NodeId, int> freq_;
  PooledUMap<NodeId, Cycle> cooldown_until_;
  /// Injection-channel write schedule. Cycle-sorted flat storage: the hot
  /// path is one front()-vs-now compare per NI tick (was a std::map lookup).
  CycleMap<Flit> cs_plan_;
  /// Config messages held back by a Delay fault verdict: release cycle -> pkt.
  CycleMap<PacketPtr> delayed_config_;
  /// Liveness teardowns waiting for planned circuit flits to clear:
  /// fire cycle -> doomed connection's destination.
  CycleMap<NodeId> fault_teardowns_;
  /// Backed-off setup retries (cfg.setup_backoff_base_cycles > 0):
  /// fire cycle -> retry parameters. The destination stays in pending_dsts_
  /// while deferred so no competing setup starts.
  CycleMap<DeferredSetup> deferred_setups_;
  ConfigFaultHook fault_hook_;
  DestinationLookupTable dlt_;
  /// epoch_tick scratch (kept across calls so steady-state epochs do not
  /// touch the heap).
  std::vector<NodeId> idle_scratch_;

  HybridRouter* hrouter_ = nullptr;
  TdmController* ctrl_;
  Rng rng_;
  bool frozen_ = false;
  Cycle epoch_start_ = 0;

  std::uint64_t setups_sent_ = 0;
  std::uint64_t setup_failures_ = 0;
  std::uint64_t cs_packets_ = 0;
  std::uint64_t hitchhike_packets_ = 0;
  std::uint64_t vicinity_packets_ = 0;
  std::uint64_t hitchhike_bounces_ = 0;
  std::uint64_t vicinity_hopoffs_ = 0;
  std::uint64_t cs_rejected_no_window_ = 0;
  std::uint64_t cs_rejected_latency_ = 0;
  std::uint64_t stale_config_drops_ = 0;
  std::uint64_t pending_timeouts_ = 0;
  std::uint64_t orphan_ack_teardowns_ = 0;
  std::uint64_t duplicate_acks_ = 0;
  std::uint64_t cs_fault_teardowns_ = 0;
  std::uint64_t setup_give_ups_ = 0;
};

}  // namespace hybridnoc
