// The TDM hybrid-switched router (Section II-D, Figure 2): a canonical VC
// wormhole router extended with a slot table, circuit-switched latches and
// input demultiplexers.
//
// Per cycle T, an arriving flit is steered by the slot-table entry for T:
// circuit-switched flits cross the (pre-configured) crossbar in the same
// cycle — one cycle of router latency, no buffering — while packet-switched
// flits enter the normal pipeline. Reserved slots with no arriving circuit
// flit are released to packet-switched traffic ("time-slot stealing",
// Section II-D), using the one-bit advance signal the upstream router
// propagates a cycle ahead (modelled by peeking the input channel's arrival
// schedule — exactly the information that wire carries).
//
// The router also executes the path configuration protocol (Section II-B):
// setup messages reserve (input -> output) slot ranges hop by hop and are
// converted in place to failure acks on conflict; teardown messages walk the
// reserved path via the slot tables and evaporate at the node where their
// setup failed.
#pragma once

#include <vector>

#include "noc/router.hpp"
#include "tdm/controller.hpp"
#include "tdm/slot_table.hpp"

namespace hybridnoc {

/// Callbacks from the router into its co-located NI (same tile, dedicated
/// wires): DLT maintenance for path sharing and hitchhiker bounce delivery.
class CircuitNiHooks {
 public:
  virtual ~CircuitNiHooks() = default;
  /// A setup message successfully reserved (in -> out) at this router for a
  /// connection toward `dest`, crossing the local crossbar at `slot`.
  virtual void on_setup_pass(NodeId dest, int slot, int duration, Port in,
                             Port out, Cycle now) = 0;
  /// A teardown released the reservation riding (slot, in).
  virtual void on_teardown_pass(int slot, Port in, Cycle now) = 0;
  /// The router forwarded circuit traffic on the reservation riding
  /// (slot, in): the path is confirmed end to end and safe to share.
  virtual void on_circuit_use(int slot, Port in, Cycle now) = 0;
  /// A hitchhiking packet lost to contention (or a stale path) at the
  /// crossbar; the NI must re-send it packet-switched (Section III-A1).
  /// `pkt` is kept alive by the head flit's still-unconsumed flight
  /// reference for the duration of the call.
  virtual void on_hitchhike_bounce(Packet* pkt, Cycle now) = 0;
};

class HybridRouter : public Router {
 public:
  HybridRouter(const NocConfig& cfg, NodeId id, const Mesh& mesh,
               TdmController* ctrl);

  void set_ni_hooks(CircuitNiHooks* hooks) { ni_hooks_ = hooks; }

  SlotTable& slots() { return slots_; }
  const SlotTable& slots() const { return slots_; }

  /// NI-side pre-check: are the local input's slots [slot, slot+dur) free?
  bool local_input_free(int slot, int duration) const {
    return slots_.input_free(slot, duration, Port::Local);
  }

  /// Is the shared entry a hitchhiker wants still in place for a flit that
  /// will cross the crossbar at `crossing_cycle`?
  bool share_entry_ok(Cycle crossing_cycle, Port in, Port out) const {
    const auto e = slots_.lookup(crossing_cycle, in);
    return e.has_value() && *e == out;
  }

  std::uint64_t cs_flits_traversed() const { return cs_flits_traversed_; }
  std::uint64_t ps_steals() const { return ps_steals_; }
  /// Setup/teardown messages discarded because their table generation
  /// predated a slot-table reset.
  std::uint64_t stale_config_drops() const { return stale_config_drops_; }
  /// Reservation entries reclaimed by lease expiry (orphan backstop).
  std::uint64_t expired_reservations() const { return expired_reservations_; }
  /// Config messages evaporated at this router because a link fault
  /// corrupted them in flight (see Router::on_config_corrupt).
  std::uint64_t corrupt_config_drops() const { return corrupt_config_drops_; }

  // --- active-set scheduling ---
  bool sched_busy() const override;
  Cycle sched_next_event(Cycle now) const override;

  /// Checkpoint: base router state plus the slot table and CS counters.
  /// Requires no in-flight circuit traversal or hitchhike latch.
  void save_state(StateWriter& w) const override;
  void restore_state(StateReader& r) override;

  void collect_in_flight(std::vector<Packet*>& out) const override;

 protected:
  bool handle_arrival(Flit& flit, Port in, Cycle now) override;
  bool st_ok(Port in, Port out, Cycle st_cycle) override;
  std::optional<Port> compute_route(Packet* pkt, Port in, Cycle now) override;
  void on_config_corrupt(Packet* pkt) override;
  void traverse_circuit(Cycle now) override;
  void leakage_tick(Cycle now) override;
  void accumulate_idle_energy(EnergyCounters& e, std::uint64_t ncycles) const override;

 private:
  std::optional<Port> process_setup(Packet* pkt, Port in, Cycle now);
  std::optional<Port> process_teardown(Packet* pkt, Port in, Cycle now);

  /// Will a circuit-switched flit arrive on `port` exactly at `cycle`?
  /// (The advance-signal wire of Section II-D.)
  bool cs_arrival_expected(Port port, Cycle cycle) const;
  const Flit* peek_arrival(Port port, Cycle cycle) const;

  /// Crossbar output a circuit flit arriving at Local at `cycle` will claim.
  std::optional<Port> local_cs_target(Cycle cycle) const;

  std::optional<Port> take_hh_override(Cycle now);

  struct CsTraversal {
    Flit flit;
    Port out;
  };

  SlotTable slots_;
  TdmController* ctrl_;
  CircuitNiHooks* ni_hooks_ = nullptr;
  std::vector<CsTraversal> cs_now_;
  /// Scheduled crossbar outputs for body flits of an accepted hitchhiker
  /// packet (the "in-progress hitchhike" latch): cycle -> output port.
  std::vector<std::pair<Cycle, Port>> hh_overrides_;
  std::uint64_t cs_flits_traversed_ = 0;
  std::uint64_t ps_steals_ = 0;
  std::uint64_t stale_config_drops_ = 0;
  std::uint64_t expired_reservations_ = 0;
  std::uint64_t corrupt_config_drops_ = 0;
};

}  // namespace hybridnoc
