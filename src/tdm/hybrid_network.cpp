#include "tdm/hybrid_network.hpp"

#include <algorithm>
#include <optional>
#include <vector>

namespace hybridnoc {

HybridNetwork::HybridNetwork(const NocConfig& cfg)
    : detail::ControllerHolder(cfg),
      Network(
          cfg,
          [this](const NocConfig& c, NodeId n, const Mesh& m) {
            return std::make_unique<HybridRouter>(
                c, n, m, ControllerHolder::controller.get());
          },
          [this](const NocConfig& c, NodeId n, const Mesh& m) {
            return std::make_unique<HybridNi>(c, n, m,
                                              ControllerHolder::controller.get());
          }) {
  HN_CHECK(cfg.arch == RouterArch::HybridTdm);
  for (NodeId n = 0; n < num_nodes(); ++n) {
    hybrid_ni(n).attach_router(&hybrid_router(n));
  }
  controller().set_reset_hook([this](int new_active) {
    // The controller ticks with now() already advanced past the components'
    // last cycle (now() - 1). Settle lazily accounted energy through that
    // cycle first: the slot-table active size is a per-cycle leakage rate,
    // so slept-through cycles must be folded at the OLD size before it
    // changes underneath a sleeping component.
    const Cycle through = now() == 0 ? 0 : now() - 1;
    for (NodeId n = 0; n < num_nodes(); ++n) {
      hybrid_router(n).settle_energy(through);
      hybrid_ni(n).settle_energy(through);
      hybrid_router(n).slots().set_active_size(new_active);
      hybrid_ni(n).reset_circuit_state();
    }
  });
  controller().set_quiesced_check([this]() {
    // O(1): HybridNi maintains the controller's nis_with_cs_plan gauge on
    // every empty <-> non-empty cs_plan_ transition, so the per-cycle
    // reset-pending poll never has to walk the NIs.
    return controller().nis_with_cs_plan() == 0;
  });
}

void HybridNetwork::tick() {
  Network::tick();
  controller().tick(now());
}

Cycle HybridNetwork::external_next_event(Cycle now) const {
  // The controller ticks with now()+1 right after the components run cycle
  // now(), so to land a controller tick on clock value `ev` the network must
  // execute component cycle ev-1.
  const Cycle ev = controller().next_event(now);
  return ev == kCycleNever ? kCycleNever : ev - 1;
}

void HybridNetwork::save_external_state(StateWriter& w) const {
  HN_CHECK_MSG(fault_mode_ == FaultMode::Off && !recording_,
               "checkpoint excludes the config-fault harness");
  controller().save_state(w);
}

void HybridNetwork::restore_external_state(StateReader& r) {
  HN_CHECK_MSG(fault_mode_ == FaultMode::Off && !recording_,
               "restore excludes the config-fault harness");
  controller().restore_state(r);
}

// ---------------------------------------------------------------------------
// Config-message fault injection, recording and replay
// ---------------------------------------------------------------------------

namespace {

ConfigKind config_kind_of(MsgType t) {
  switch (t) {
    case MsgType::SetupRequest: return ConfigKind::Setup;
    case MsgType::Teardown: return ConfigKind::Teardown;
    case MsgType::AckSuccess: return ConfigKind::AckSuccess;
    case MsgType::AckFailure:
    case MsgType::Data:
      break;  // failure acks are minted in place by routers, never dispatched
  }
  HN_CHECK_MSG(false, "unexpected message type at config dispatch");
  return ConfigKind::Setup;
}

FaultAction to_fault_action(ConfigFaultDecision::Action a) {
  switch (a) {
    case ConfigFaultDecision::Action::None: return FaultAction::None;
    case ConfigFaultDecision::Action::Drop: return FaultAction::Drop;
    case ConfigFaultDecision::Action::Delay: return FaultAction::Delay;
    case ConfigFaultDecision::Action::Duplicate: return FaultAction::Duplicate;
  }
  return FaultAction::None;
}

ConfigFaultDecision::Action from_fault_action(FaultAction a) {
  switch (a) {
    case FaultAction::None: return ConfigFaultDecision::Action::None;
    case FaultAction::Drop: return ConfigFaultDecision::Action::Drop;
    case FaultAction::Delay: return ConfigFaultDecision::Action::Delay;
    case FaultAction::Duplicate: return ConfigFaultDecision::Action::Duplicate;
  }
  return ConfigFaultDecision::Action::None;
}

}  // namespace

ConfigFaultDecision HybridNetwork::next_fault() {
  ConfigFaultDecision d;
  if (fault_rng_.bernoulli(fault_params_.drop_prob)) {
    d.action = ConfigFaultDecision::Action::Drop;
    ++faults_dropped_;
  } else if (fault_rng_.bernoulli(fault_params_.delay_prob)) {
    d.action = ConfigFaultDecision::Action::Delay;
    d.delay = 1 + fault_rng_.uniform_int(
                      std::max<Cycle>(fault_params_.max_delay_cycles, 1));
    ++faults_delayed_;
  } else if (fault_rng_.bernoulli(fault_params_.dup_prob)) {
    d.action = ConfigFaultDecision::Action::Duplicate;
    ++faults_duplicated_;
  }
  return d;
}

ConfigFaultDecision HybridNetwork::on_config_dispatch(const PacketPtr& pkt,
                                                      Cycle now) {
  const ConfigKind kind = config_kind_of(pkt->type);
  ConfigFaultDecision d;
  if (fault_mode_ == FaultMode::Seeded) {
    d = next_fault();
  } else if (fault_mode_ == FaultMode::Replay) {
    ++replay_events_;
    const int occ = replay_occurrence_[fault_record_key(kind, pkt->src,
                                                        pkt->dst, 0)]++;
    const auto it = replay_index_.find(
        fault_record_key(kind, pkt->src, pkt->dst, occ));
    if (it != replay_index_.end()) {
      const FaultRecord& r = replay_trace_.records[it->second];
      d.action = from_fault_action(r.action);
      d.delay = r.delay;
      ++replay_applied_;
      switch (r.action) {
        case FaultAction::Drop: ++faults_dropped_; break;
        case FaultAction::Delay: ++faults_delayed_; break;
        case FaultAction::Duplicate: ++faults_duplicated_; break;
        case FaultAction::None: break;
      }
    }
    if (replay_audit_each_event_) {
      // The per-event invariant is "every installed window still walks its
      // path" — orphan entries are legal mid-flight (a setup reserves hop
      // by hop before its window is installed by the returning ack).
      if (audit_reservations().broken_windows > 0) ++replay_audit_failures_;
    }
  }
  if (recording_) {
    const int occ = record_occurrence_[fault_record_key(kind, pkt->src,
                                                        pkt->dst, 0)]++;
    recorded_trace_.records.push_back({now, pkt->id, kind, pkt->src, pkt->dst,
                                       occ, to_fault_action(d.action),
                                       d.delay});
  }
  return d;
}

void HybridNetwork::update_fault_hooks() {
  ConfigFaultHook hook;
  if (fault_mode_ != FaultMode::Off || recording_) {
    hook = [this](const PacketPtr& p, Cycle at) {
      return on_config_dispatch(p, at);
    };
  }
  for (NodeId n = 0; n < num_nodes(); ++n) {
    hybrid_ni(n).set_config_fault_hook(hook);
  }
  // The dispatch hook funnels every NI into shared state (the fault RNG,
  // occurrence maps, the recorded trace — and replay audits read all
  // routers' tables mid-dispatch), and its event order is part of the
  // recorded artifact. While any mode is armed the parallel engine must
  // execute cycles serially in the exact global component order.
  set_engine_force_serial(fault_mode_ != FaultMode::Off || recording_);
}

void HybridNetwork::reset_fault_counters() {
  faults_dropped_ = 0;
  faults_delayed_ = 0;
  faults_duplicated_ = 0;
}

void HybridNetwork::enable_config_faults(const ConfigFaultParams& p) {
  HN_CHECK_MSG(fault_mode_ != FaultMode::Replay,
               "seeded faults and replay are mutually exclusive");
  fault_params_ = p;
  fault_rng_.reseed(p.seed);
  reset_fault_counters();
  fault_mode_ = FaultMode::Seeded;
  update_fault_hooks();
}

void HybridNetwork::disable_config_faults() {
  if (fault_mode_ == FaultMode::Seeded) fault_mode_ = FaultMode::Off;
  update_fault_hooks();
}

void HybridNetwork::start_fault_trace_recording() {
  recording_ = true;
  recorded_trace_ = FaultTrace{};
  record_occurrence_.clear();
  update_fault_hooks();
}

void HybridNetwork::stop_fault_trace_recording() {
  recording_ = false;
  update_fault_hooks();
}

void HybridNetwork::enable_config_fault_replay(const FaultTrace& trace,
                                               bool audit_each_event) {
  HN_CHECK_MSG(fault_mode_ != FaultMode::Seeded,
               "seeded faults and replay are mutually exclusive");
  replay_trace_ = trace;
  replay_index_.clear();
  replay_occurrence_.clear();
  for (std::size_t i = 0; i < replay_trace_.records.size(); ++i) {
    const FaultRecord& r = replay_trace_.records[i];
    // Data-plane records (v2) replay through the FaultModel, not the config
    // dispatch hook; leave them out of the match index.
    if (r.kind == ConfigKind::Link || r.kind == ConfigKind::Router) continue;
    const auto [it, inserted] = replay_index_.emplace(
        fault_record_key(r.kind, r.src, r.dst, r.occurrence), i);
    (void)it;
    HN_CHECK_MSG(inserted, "duplicate (kind, src, dst, occurrence) key in fault trace");
  }
  replay_audit_each_event_ = audit_each_event;
  replay_events_ = 0;
  replay_applied_ = 0;
  replay_audit_failures_ = 0;
  reset_fault_counters();
  fault_mode_ = FaultMode::Replay;
  update_fault_hooks();
}

void HybridNetwork::disable_config_fault_replay() {
  if (fault_mode_ == FaultMode::Replay) fault_mode_ = FaultMode::Off;
  update_fault_hooks();
}

std::uint64_t HybridNetwork::slot_state_digest() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;  // FNV prime
  };
  const int S = controller().active_slots();
  for (NodeId n = 0; n < num_nodes(); ++n) {
    const auto& st = static_cast<const HybridRouter&>(router(n)).slots();
    if (st.valid_entries() == 0) continue;  // nothing to mix from this router
    for (int s = 0; s < S; ++s) {
      for (int j = 0; j < kNumPorts; ++j) {
        const Port in = static_cast<Port>(j);
        if (st.valid_entries(in) == 0) continue;
        const auto out = st.lookup_slot(s, in);
        if (!out) continue;
        const auto owner = st.owner_at(s, in);
        mix(static_cast<std::uint64_t>(n));
        mix(static_cast<std::uint64_t>(s));
        mix(static_cast<std::uint64_t>(j));
        mix(static_cast<std::uint64_t>(*out));
        mix(owner ? *owner : 0);
      }
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// Reservation consistency audit
// ---------------------------------------------------------------------------

ReservationAudit HybridNetwork::audit_reservations() const {
  ReservationAudit a;

  // Fast path: with no NI holding connection windows and no valid slot-table
  // entries anywhere, the walk and the orphan scan are both vacuous. This is
  // the common case for replay-time auditing of a quiesced network.
  bool any_windows = false;
  for (NodeId n = 0; n < num_nodes(); ++n) {
    if (static_cast<const HybridNi&>(ni(n)).has_connections()) {
      any_windows = true;
      break;
    }
  }
  if (!any_windows && total_valid_slot_entries() == 0) return a;

  const int S = controller().active_slots();
  // Epoch-stamped scratch: reused across calls without clearing. A cell is
  // visited iff it equals the current epoch; resizing (mesh is fixed, but S
  // grows on dynamic resize) or epoch wrap-around forces a zero refill.
  const size_t stride = static_cast<size_t>(S) * kNumPorts;
  const size_t needed = static_cast<size_t>(num_nodes()) * stride;
  if (audit_scratch_.size() != needed) {
    audit_scratch_.assign(needed, 0);
    audit_epoch_ = 0;
  }
  if (++audit_epoch_ == 0) {
    std::fill(audit_scratch_.begin(), audit_scratch_.end(), 0u);
    audit_epoch_ = 1;
  }
  const std::uint32_t epoch = audit_epoch_;
  std::uint32_t* const visited = audit_scratch_.data();

  for (NodeId n = 0; n < num_nodes(); ++n) {
    const auto& src = static_cast<const HybridNi&>(ni(n));
    for (const NodeId dst : src.connection_dsts()) {
      const int dur = src.connection_duration(dst);
      for (const auto& [first_slot, owner] : src.connection_windows(dst)) {
        ++a.windows_walked;
        NodeId node = n;
        Port in = Port::Local;
        int slot = first_slot;
        bool ok = true;
        bool done = false;
        // A minimal path visits at most num_nodes() routers; anything longer
        // means the tables describe a loop.
        for (int hop = 0; hop < num_nodes() && ok && !done; ++hop) {
          const auto& st =
              static_cast<const HybridRouter&>(router(node)).slots();
          std::optional<Port> out;
          for (int d = 0; d < dur; ++d) {
            const int s = (slot + d) & (S - 1);
            const auto o = st.lookup_slot(s, in);
            const auto ow = st.owner_at(s, in);
            if (!o || !ow || *ow != owner || (out && *o != *out)) {
              ok = false;
              break;
            }
            out = o;
            visited[static_cast<size_t>(node) * stride +
                    static_cast<size_t>(s) * kNumPorts +
                    static_cast<size_t>(in)] = epoch;
          }
          if (!ok) break;
          if (*out == Port::Local) {
            done = (node == dst);
            ok = done;
            break;
          }
          if (!mesh().has_neighbor(node, *out)) {
            ok = false;
            break;
          }
          node = mesh().neighbor(node, *out);
          in = opposite(*out);
          slot = (slot + 2) & (S - 1);
        }
        if (!ok || !done) ++a.broken_windows;
      }
    }
  }

  for (NodeId n = 0; n < num_nodes(); ++n) {
    const auto& st = static_cast<const HybridRouter&>(router(n)).slots();
    if (st.valid_entries() == 0) continue;  // no entries -> no orphans here
    for (int s = 0; s < S; ++s) {
      for (int j = 0; j < kNumPorts; ++j) {
        if (st.valid_entries(static_cast<Port>(j)) == 0) continue;
        if (st.lookup_slot(s, static_cast<Port>(j)).has_value() &&
            visited[static_cast<size_t>(n) * stride +
                    static_cast<size_t>(s) * kNumPorts +
                    static_cast<size_t>(j)] != epoch) {
          ++a.orphan_entries;
        }
      }
    }
  }
  return a;
}

std::uint64_t HybridNetwork::total_cs_packets() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).cs_packets();
  return t;
}

std::uint64_t HybridNetwork::total_setups_sent() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).setups_sent();
  return t;
}

std::uint64_t HybridNetwork::total_setup_failures() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).setup_failures();
  return t;
}

std::uint64_t HybridNetwork::total_hitchhike_packets() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).hitchhike_packets();
  return t;
}

std::uint64_t HybridNetwork::total_vicinity_packets() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).vicinity_packets();
  return t;
}

std::uint64_t HybridNetwork::total_hitchhike_bounces() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).hitchhike_bounces();
  return t;
}

std::uint64_t HybridNetwork::total_ps_steals() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridRouter&>(router(n)).ps_steals();
  return t;
}

int HybridNetwork::total_active_connections() const {
  int t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).active_connections();
  return t;
}

std::uint64_t HybridNetwork::total_stale_config_drops() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n) {
    t += static_cast<const HybridRouter&>(router(n)).stale_config_drops();
    t += static_cast<const HybridNi&>(ni(n)).stale_config_drops();
  }
  return t;
}

std::uint64_t HybridNetwork::total_pending_timeouts() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).pending_timeouts();
  return t;
}

std::uint64_t HybridNetwork::total_expired_reservations() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridRouter&>(router(n)).expired_reservations();
  return t;
}

std::uint64_t HybridNetwork::total_cs_fault_teardowns() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).cs_fault_teardowns();
  return t;
}

std::uint64_t HybridNetwork::total_setup_give_ups() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).setup_give_ups();
  return t;
}

std::uint64_t HybridNetwork::total_corrupt_config_drops() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridRouter&>(router(n)).corrupt_config_drops();
  return t;
}

int HybridNetwork::total_valid_slot_entries() const {
  int t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridRouter&>(router(n)).slots().valid_entries();
  return t;
}

}  // namespace hybridnoc
