#include "tdm/hybrid_network.hpp"

#include <algorithm>
#include <optional>
#include <vector>

namespace hybridnoc {

HybridNetwork::HybridNetwork(const NocConfig& cfg)
    : detail::ControllerHolder(cfg),
      Network(
          cfg,
          [this](const NocConfig& c, NodeId n, const Mesh& m) {
            return std::make_unique<HybridRouter>(
                c, n, m, ControllerHolder::controller.get());
          },
          [this](const NocConfig& c, NodeId n, const Mesh& m) {
            return std::make_unique<HybridNi>(c, n, m,
                                              ControllerHolder::controller.get());
          }) {
  HN_CHECK(cfg.arch == RouterArch::HybridTdm);
  for (NodeId n = 0; n < num_nodes(); ++n) {
    hybrid_ni(n).attach_router(&hybrid_router(n));
  }
  controller().set_reset_hook([this](int new_active) {
    for (NodeId n = 0; n < num_nodes(); ++n) {
      hybrid_router(n).slots().set_active_size(new_active);
      hybrid_ni(n).reset_circuit_state();
    }
  });
  controller().set_quiesced_check([this]() {
    for (NodeId n = 0; n < num_nodes(); ++n) {
      if (!hybrid_ni(n).cs_plan_empty()) return false;
    }
    return true;
  });
}

void HybridNetwork::tick() {
  Network::tick();
  controller().tick(now());
}

// ---------------------------------------------------------------------------
// Config-message fault injection
// ---------------------------------------------------------------------------

ConfigFaultDecision HybridNetwork::next_fault() {
  ConfigFaultDecision d;
  if (fault_rng_.bernoulli(fault_params_.drop_prob)) {
    d.action = ConfigFaultDecision::Action::Drop;
    ++faults_dropped_;
  } else if (fault_rng_.bernoulli(fault_params_.delay_prob)) {
    d.action = ConfigFaultDecision::Action::Delay;
    d.delay = 1 + fault_rng_.uniform_int(
                      std::max<Cycle>(fault_params_.max_delay_cycles, 1));
    ++faults_delayed_;
  } else if (fault_rng_.bernoulli(fault_params_.dup_prob)) {
    d.action = ConfigFaultDecision::Action::Duplicate;
    ++faults_duplicated_;
  }
  return d;
}

void HybridNetwork::enable_config_faults(const ConfigFaultParams& p) {
  fault_params_ = p;
  fault_rng_.reseed(p.seed);
  for (NodeId n = 0; n < num_nodes(); ++n) {
    hybrid_ni(n).set_config_fault_hook(
        [this](const PacketPtr&, Cycle) { return next_fault(); });
  }
}

void HybridNetwork::disable_config_faults() {
  for (NodeId n = 0; n < num_nodes(); ++n) {
    hybrid_ni(n).set_config_fault_hook(nullptr);
  }
}

// ---------------------------------------------------------------------------
// Reservation consistency audit
// ---------------------------------------------------------------------------

ReservationAudit HybridNetwork::audit_reservations() const {
  ReservationAudit a;
  const int S = controller().active_slots();
  std::vector<std::vector<bool>> visited(static_cast<size_t>(num_nodes()));
  for (auto& v : visited) v.assign(static_cast<size_t>(S) * kNumPorts, false);

  for (NodeId n = 0; n < num_nodes(); ++n) {
    const auto& src = static_cast<const HybridNi&>(ni(n));
    for (const NodeId dst : src.connection_dsts()) {
      const int dur = src.connection_duration(dst);
      for (const auto& [first_slot, owner] : src.connection_windows(dst)) {
        ++a.windows_walked;
        NodeId node = n;
        Port in = Port::Local;
        int slot = first_slot;
        bool ok = true;
        bool done = false;
        // A minimal path visits at most num_nodes() routers; anything longer
        // means the tables describe a loop.
        for (int hop = 0; hop < num_nodes() && ok && !done; ++hop) {
          const auto& st =
              static_cast<const HybridRouter&>(router(node)).slots();
          std::optional<Port> out;
          for (int d = 0; d < dur; ++d) {
            const int s = (slot + d) & (S - 1);
            const auto o = st.lookup_slot(s, in);
            const auto ow = st.owner_at(s, in);
            if (!o || !ow || *ow != owner || (out && *o != *out)) {
              ok = false;
              break;
            }
            out = o;
            visited[static_cast<size_t>(node)]
                   [static_cast<size_t>(s) * kNumPorts +
                    static_cast<size_t>(in)] = true;
          }
          if (!ok) break;
          if (*out == Port::Local) {
            done = (node == dst);
            ok = done;
            break;
          }
          if (!mesh().has_neighbor(node, *out)) {
            ok = false;
            break;
          }
          node = mesh().neighbor(node, *out);
          in = opposite(*out);
          slot = (slot + 2) & (S - 1);
        }
        if (!ok || !done) ++a.broken_windows;
      }
    }
  }

  for (NodeId n = 0; n < num_nodes(); ++n) {
    const auto& st = static_cast<const HybridRouter&>(router(n)).slots();
    for (int s = 0; s < S; ++s) {
      for (int j = 0; j < kNumPorts; ++j) {
        if (st.lookup_slot(s, static_cast<Port>(j)).has_value() &&
            !visited[static_cast<size_t>(n)]
                    [static_cast<size_t>(s) * kNumPorts +
                     static_cast<size_t>(j)]) {
          ++a.orphan_entries;
        }
      }
    }
  }
  return a;
}

std::uint64_t HybridNetwork::total_cs_packets() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).cs_packets();
  return t;
}

std::uint64_t HybridNetwork::total_setups_sent() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).setups_sent();
  return t;
}

std::uint64_t HybridNetwork::total_setup_failures() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).setup_failures();
  return t;
}

std::uint64_t HybridNetwork::total_hitchhike_packets() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).hitchhike_packets();
  return t;
}

std::uint64_t HybridNetwork::total_vicinity_packets() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).vicinity_packets();
  return t;
}

std::uint64_t HybridNetwork::total_hitchhike_bounces() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).hitchhike_bounces();
  return t;
}

std::uint64_t HybridNetwork::total_ps_steals() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridRouter&>(router(n)).ps_steals();
  return t;
}

int HybridNetwork::total_active_connections() const {
  int t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).active_connections();
  return t;
}

std::uint64_t HybridNetwork::total_stale_config_drops() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n) {
    t += static_cast<const HybridRouter&>(router(n)).stale_config_drops();
    t += static_cast<const HybridNi&>(ni(n)).stale_config_drops();
  }
  return t;
}

std::uint64_t HybridNetwork::total_pending_timeouts() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).pending_timeouts();
  return t;
}

std::uint64_t HybridNetwork::total_expired_reservations() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridRouter&>(router(n)).expired_reservations();
  return t;
}

int HybridNetwork::total_valid_slot_entries() const {
  int t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridRouter&>(router(n)).slots().valid_entries();
  return t;
}

}  // namespace hybridnoc
