#include "tdm/hybrid_network.hpp"

namespace hybridnoc {

HybridNetwork::HybridNetwork(const NocConfig& cfg)
    : detail::ControllerHolder(cfg),
      Network(
          cfg,
          [this](const NocConfig& c, NodeId n, const Mesh& m) {
            return std::make_unique<HybridRouter>(
                c, n, m, ControllerHolder::controller.get());
          },
          [this](const NocConfig& c, NodeId n, const Mesh& m) {
            return std::make_unique<HybridNi>(c, n, m,
                                              ControllerHolder::controller.get());
          }) {
  HN_CHECK(cfg.arch == RouterArch::HybridTdm);
  for (NodeId n = 0; n < num_nodes(); ++n) {
    hybrid_ni(n).attach_router(&hybrid_router(n));
  }
  controller().set_reset_hook([this](int new_active) {
    for (NodeId n = 0; n < num_nodes(); ++n) {
      hybrid_router(n).slots().set_active_size(new_active);
      hybrid_ni(n).reset_circuit_state();
    }
  });
  controller().set_quiesced_check([this]() {
    for (NodeId n = 0; n < num_nodes(); ++n) {
      if (!hybrid_ni(n).cs_plan_empty()) return false;
    }
    return true;
  });
}

void HybridNetwork::tick() {
  Network::tick();
  controller().tick(now());
}

std::uint64_t HybridNetwork::total_cs_packets() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).cs_packets();
  return t;
}

std::uint64_t HybridNetwork::total_setups_sent() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).setups_sent();
  return t;
}

std::uint64_t HybridNetwork::total_setup_failures() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).setup_failures();
  return t;
}

std::uint64_t HybridNetwork::total_hitchhike_packets() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).hitchhike_packets();
  return t;
}

std::uint64_t HybridNetwork::total_vicinity_packets() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).vicinity_packets();
  return t;
}

std::uint64_t HybridNetwork::total_hitchhike_bounces() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).hitchhike_bounces();
  return t;
}

std::uint64_t HybridNetwork::total_ps_steals() const {
  std::uint64_t t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridRouter&>(router(n)).ps_steals();
  return t;
}

int HybridNetwork::total_active_connections() const {
  int t = 0;
  for (NodeId n = 0; n < num_nodes(); ++n)
    t += static_cast<const HybridNi&>(ni(n)).active_connections();
  return t;
}

}  // namespace hybridnoc
