// Deterministic record/replay for the config-message fault harness.
//
// The seeded harness (ConfigFaultParams) makes a failing storm reproducible
// only by seed: nothing says *which* drop or delay mattered. This module
// captures every config-protocol dispatch as a (cycle, message id/kind,
// action) record in a versioned, text-serializable FaultTrace, and replays
// the exact decision sequence with no RNG involved. Records are keyed by
// (kind, src, dst, occurrence) — "the 3rd setup from node 0 to node 23" —
// so a replayed decision lands on the same protocol event even when other
// faults are removed and packet ids or cycles drift. That keying is what
// makes delta-debugging possible: the shrinker (shrink_fault_scenario,
// driven by tools/shrink_fault_trace) removes fault records, re-runs the
// scenario, and keeps the smallest subset that still violates an invariant.
//
// A FaultScenario bundles everything a re-run needs — the config knobs that
// matter to the protocol, the explicit injection schedule (reusing the
// traffic-trace entry format), resize request cycles, the seeded fault
// parameters, and the fault trace — so a shrunk failure checks in as one
// self-contained fixture file.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "traffic/trace.hpp"

namespace hybridnoc {

/// Seeded parameters for the config-message fault-injection harness: every
/// outgoing setup/teardown/ack is independently dropped, delayed or
/// duplicated with the given probabilities.
struct ConfigFaultParams {
  double drop_prob = 0.0;
  double delay_prob = 0.0;
  double dup_prob = 0.0;
  Cycle max_delay_cycles = 64;  ///< delays are uniform in [1, max]
  std::uint64_t seed = 1;
};

/// Event kinds a fault record can attach to. Setup/Teardown/AckSuccess are
/// the three config messages the NI dispatches (failure acks are minted in
/// place by a conflicting router and never pass the dispatch hook); Link and
/// Router (v2) carry data-plane hardware faults — `src` is the upstream
/// node, `dst` the directed link's output-port index (Link only).
enum class ConfigKind : std::uint8_t { Setup, Teardown, AckSuccess, Link, Router };

/// What happened to the event. None/Drop/Delay/Duplicate apply to config
/// messages; Corrupt/Stuck/Kill (v2) to Link/Router records — Corrupt is one
/// transient flit corruption (keyed by the link's traversal `occurrence`),
/// Stuck a corrupting window of `delay` cycles from `cycle`, Kill a
/// permanent link or router death at `cycle`.
enum class FaultAction : std::uint8_t {
  None, Drop, Delay, Duplicate, Corrupt, Stuck, Kill
};

const char* config_kind_name(ConfigKind k);
const char* fault_action_name(FaultAction a);
std::optional<ConfigKind> parse_config_kind(const std::string& s);
std::optional<FaultAction> parse_fault_action(const std::string& s);

/// One config-protocol event and the fault decision applied to it.
struct FaultRecord {
  Cycle cycle = 0;      ///< dispatch cycle when recorded (diagnostic only)
  PacketId msg_id = 0;  ///< packet id when recorded (diagnostic only)
  ConfigKind kind = ConfigKind::Setup;
  NodeId src = 0;
  NodeId dst = 0;
  /// nth dispatch with this (kind, src, dst), 0-based — the replay key.
  int occurrence = 0;
  FaultAction action = FaultAction::None;
  Cycle delay = 0;  ///< injection delay in cycles (Delay only)
  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

/// Replay-key packing: kind in the top bits, then src/dst/occurrence (20
/// bits each — far beyond any mesh or storm this simulator runs).
std::uint64_t fault_record_key(ConfigKind kind, NodeId src, NodeId dst,
                               int occurrence);

/// The full decision sequence of one harness run. v2 traces may also carry
/// the run's data-plane faults (Link/Router records): permanent kills, stuck
/// windows, and every transient corruption that fired.
struct FaultTrace {
  static constexpr int kVersion = 2;  ///< loaders accept [1, kVersion]
  std::vector<FaultRecord> records;

  /// Records whose action is not None (the ones replay must re-apply).
  std::size_t active_faults() const;
  friend bool operator==(const FaultTrace&, const FaultTrace&) = default;
};

/// Text serialization: `hybridnoc-fault-trace v1` header, one record per
/// line, `#` comments ignored. load aborts (HN_CHECK) on malformed lines or
/// an unknown version.
void save_fault_trace(std::ostream& out, const FaultTrace& trace);
FaultTrace load_fault_trace(std::istream& in);

/// A self-contained storm: protocol-relevant config knobs, the injection
/// schedule, resize request cycles, seeded fault parameters (record mode)
/// and the fault trace (replay mode). `invariant` names the property a
/// shrunk fixture still violates ("" when unset).
struct FaultScenario {
  int k = 6;
  int slot_table_size = 64;
  bool dynamic_slot_sizing = false;
  int initial_active_slots = 16;
  int path_freq_threshold = 4;
  int policy_epoch_cycles = 256;
  std::uint64_t path_idle_timeout = 1024;
  std::uint64_t pending_setup_timeout_cycles = 2000;
  std::uint64_t reservation_lease_cycles = 4096;
  Cycle run_cycles = 10000;
  /// Fault-free traffic cycles after the storm (timeouts and the lease mop
  /// up while live windows stay refreshed).
  Cycle cooldown_cycles = 6000;
  std::vector<Cycle> resizes;  ///< cycles at which a table resize is requested
  ConfigFaultParams fault_params;

  // --- data-plane faults (v2) ---
  /// One scheduled hardware link fault; duration is StuckLink-only.
  struct LinkFaultSpec {
    NodeId node = 0;
    int port = 0;  ///< Port index 1..4 (East..West)
    Cycle start = 0;
    Cycle duration = 0;
  };
  double link_ber = 0.0;  ///< per-traversal transient corruption probability
  std::uint64_t link_fault_seed = 1;
  bool e2e_recovery = false;
  std::uint64_t retx_timeout_cycles = 256;
  std::uint64_t retx_backoff_cap_cycles = 4096;
  int max_retx_attempts = 6;
  int cs_fail_threshold = 3;
  std::uint64_t watchdog_stall_cycles = 0;
  std::uint64_t setup_backoff_base_cycles = 0;
  std::uint64_t setup_backoff_cap_cycles = 1024;
  /// Record-mode schedule (replay re-derives kills from the trace instead,
  /// so the shrinker can drop them too).
  std::vector<LinkFaultSpec> dead_links;
  std::vector<LinkFaultSpec> stuck_links;
  std::vector<std::pair<NodeId, Cycle>> dead_routers;

  std::string invariant;
  std::vector<TraceEntry> traffic;
  FaultTrace faults;

  NocConfig to_config() const;
};

void save_fault_scenario(std::ostream& out, const FaultScenario& s);
FaultScenario load_fault_scenario(std::istream& in);

/// File helpers (abort on unreadable/unwritable paths).
FaultScenario read_fault_scenario_file(const std::string& path);
void write_fault_scenario_file(const std::string& path,
                               const FaultScenario& s);

/// Everything a scenario run exposes to invariant predicates and tests.
struct ScenarioOutcome {
  // Final state, after cooldown, drain and three reservation leases.
  bool quiesced = false;
  int broken_windows = 0;
  int orphan_entries = 0;
  int valid_slot_entries = 0;
  int active_connections = 0;
  std::uint64_t config_in_flight = 0;
  std::uint64_t slot_state_digest = 0;
  // Storm accounting.
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t stale_config_drops = 0;
  std::uint64_t pending_timeouts = 0;
  std::uint64_t expired_reservations = 0;
  std::uint64_t orphan_ack_teardowns = 0;
  std::uint64_t setup_failures = 0;
  // Replay bookkeeping (replay mode only).
  std::uint64_t replay_events = 0;
  std::uint64_t replay_applied = 0;
  std::uint64_t replay_audit_failures = 0;
  // Data-plane fault accounting (v2 scenarios; zero otherwise).
  std::uint64_t data_sent = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t retx_give_ups = 0;
  std::uint64_t unreachable_failed = 0;
  std::uint64_t crc_flagged_flits = 0;
  std::uint64_t crc_squashed_packets = 0;
  std::uint64_t cs_fault_teardowns = 0;
  std::uint64_t setup_give_ups = 0;
  int failed_links = 0;
};

enum class ScenarioMode : std::uint8_t {
  Record,  ///< seeded faults from fault_params; decision sequence captured
  Replay,  ///< decisions re-driven from the scenario's fault trace
};

/// Build the network, drive the scenario end to end (storm, cooldown,
/// drain, lease expiry) and report the outcome. In Record mode the captured
/// trace is written to `recorded` when non-null. `audit_each_event` runs
/// the network-wide reservation audit after every replayed config event and
/// counts the events after which an installed window failed its walk.
ScenarioOutcome run_fault_scenario(const FaultScenario& s, ScenarioMode mode,
                                   bool audit_each_event = false,
                                   FaultTrace* recorded = nullptr);

/// Invariant registry for the shrinker. `violates_invariant` returns true
/// when `o` VIOLATES the named invariant; unknown names abort.
bool violates_invariant(const std::string& name, const ScenarioOutcome& o);
std::vector<std::string> known_invariants();

/// Delta-debugging (ddmin) minimization: find a 1-minimal subset of the
/// scenario's non-None fault records that still violates `invariant`, and
/// return the scenario rewritten to carry only that subset (None records
/// are dropped — replay treats unmatched events as unfaulted anyway).
struct ShrinkResult {
  FaultScenario minimized;
  std::size_t original_records = 0;  ///< all records, None included
  std::size_t original_faults = 0;   ///< non-None records
  std::size_t final_faults = 0;
  int runs = 0;  ///< scenario executions the search needed
};
ShrinkResult shrink_fault_scenario(
    const FaultScenario& failing, const std::string& invariant,
    bool audit_each_event = false,
    const std::function<void(const std::string&)>& progress = nullptr);

}  // namespace hybridnoc
