// Destination Lookup Table (Section III-A1). Each node on a circuit-switched
// path stores, for every connection passing through its router: the
// connection's destination, the time slot at which circuit flits cross this
// router's crossbar, the (input, output) ports of the slot-table entries,
// and a 2-bit saturating failure counter. When the counter saturates at '10'
// (two consecutive sharing failures) the node gives up on sharing, removes
// the entry and requests a dedicated circuit of its own.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace hybridnoc {

class StateWriter;
class StateReader;

struct DltEntry {
  NodeId dest = kInvalidNode;
  int slot = 0;      ///< crossbar slot at this node's router
  int duration = 0;  ///< reserved consecutive slots
  Port in = Port::Local;
  Port out = Port::Local;
  std::uint8_t fail_count = 0;  ///< 2-bit saturating counter
  Cycle last_used = 0;          ///< for LRU replacement
  /// Slot-table generation the underlying reservation was made under; an
  /// entry from an older generation refers to wiped slots and must never be
  /// ridden (the table is cleared on reset, so this is a belt-and-braces
  /// check at the point of use).
  std::uint64_t generation = 0;
  /// A setup passing through only makes the entry provisional — the setup
  /// may still fail downstream, leaving a partial path that must never be
  /// ridden. The entry activates when the local router first forwards a
  /// circuit flit on the reservation (proof the circuit completed).
  bool active = false;
};

class DestinationLookupTable {
 public:
  explicit DestinationLookupTable(int capacity);

  /// Record a connection observed passing through the local router
  /// (replaces an existing entry for the same destination; LRU-evicts when
  /// full). Resets the failure counter. `generation` is the slot-table
  /// generation the reservation was made under.
  void observe(NodeId dest, int slot, int duration, Port in, Port out,
               Cycle now, std::uint64_t generation = 0);

  /// Active entry whose path leads to `dest`, if any.
  std::optional<DltEntry> find(NodeId dest) const;

  /// Activate the provisional entry riding (slot, in); called when the
  /// local router forwards circuit traffic on that reservation.
  void activate_route(int slot, Port in);

  /// Active entry whose destination is adjacent to `dest` (combined
  /// hitchhiker+vicinity sharing). `adjacent` is supplied by the caller.
  template <typename AdjFn>
  std::optional<DltEntry> find_adjacent(NodeId dest, AdjFn adjacent) const {
    for (const auto& e : entries_) {
      if (e.dest != kInvalidNode && e.active && adjacent(e.dest, dest)) return e;
    }
    return std::nullopt;
  }

  void touch(NodeId dest, Cycle now);

  /// Sharing toward `dest` failed (contention or stale path). Returns true
  /// if the 2-bit counter saturated — the entry is then removed and the
  /// caller should fall back to a dedicated path setup (Section III-A1).
  bool record_failure(NodeId dest);

  /// Invalidate the entry riding (slot, in) — called when a teardown removes
  /// the underlying reservation at the local router.
  void invalidate_route(int slot, Port in);
  void remove(NodeId dest);
  void clear();

  int size() const;
  int capacity() const { return capacity_; }
  std::uint64_t accesses() const { return accesses_; }

  /// Checkpoint: every entry in vector order (positions matter — the linear
  /// scans' first-match order and LRU fill order must survive a restore).
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  int index_of(NodeId dest) const;

  int capacity_;
  std::vector<DltEntry> entries_;
  mutable std::uint64_t accesses_ = 0;
};

}  // namespace hybridnoc
