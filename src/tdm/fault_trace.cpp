#include "tdm/fault_trace.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "common/pool.hpp"

#include "common/assert.hpp"
#include "common/fileio.hpp"
#include "noc/fault_model.hpp"
#include "tdm/hybrid_network.hpp"

namespace hybridnoc {

// ---------------------------------------------------------------------------
// Enum names
// ---------------------------------------------------------------------------

const char* config_kind_name(ConfigKind k) {
  switch (k) {
    case ConfigKind::Setup: return "setup";
    case ConfigKind::Teardown: return "teardown";
    case ConfigKind::AckSuccess: return "ack+";
    case ConfigKind::Link: return "link";
    case ConfigKind::Router: return "router";
  }
  return "?";
}

const char* fault_action_name(FaultAction a) {
  switch (a) {
    case FaultAction::None: return "none";
    case FaultAction::Drop: return "drop";
    case FaultAction::Delay: return "delay";
    case FaultAction::Duplicate: return "dup";
    case FaultAction::Corrupt: return "corrupt";
    case FaultAction::Stuck: return "stuck";
    case FaultAction::Kill: return "kill";
  }
  return "?";
}

std::optional<ConfigKind> parse_config_kind(const std::string& s) {
  if (s == "setup") return ConfigKind::Setup;
  if (s == "teardown") return ConfigKind::Teardown;
  if (s == "ack+") return ConfigKind::AckSuccess;
  if (s == "link") return ConfigKind::Link;
  if (s == "router") return ConfigKind::Router;
  return std::nullopt;
}

std::optional<FaultAction> parse_fault_action(const std::string& s) {
  if (s == "none") return FaultAction::None;
  if (s == "drop") return FaultAction::Drop;
  if (s == "delay") return FaultAction::Delay;
  if (s == "dup") return FaultAction::Duplicate;
  if (s == "corrupt") return FaultAction::Corrupt;
  if (s == "stuck") return FaultAction::Stuck;
  if (s == "kill") return FaultAction::Kill;
  return std::nullopt;
}

std::uint64_t fault_record_key(ConfigKind kind, NodeId src, NodeId dst,
                               int occurrence) {
  HN_CHECK(src >= 0 && dst >= 0 && occurrence >= 0);
  HN_CHECK(src < (1 << 20) && dst < (1 << 20) && occurrence < (1 << 20));
  return (static_cast<std::uint64_t>(kind) << 60) |
         (static_cast<std::uint64_t>(src) << 40) |
         (static_cast<std::uint64_t>(dst) << 20) |
         static_cast<std::uint64_t>(occurrence);
}

std::size_t FaultTrace::active_faults() const {
  return static_cast<std::size_t>(
      std::count_if(records.begin(), records.end(), [](const FaultRecord& r) {
        return r.action != FaultAction::None;
      }));
}

// ---------------------------------------------------------------------------
// Trace serialization
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kTraceMagic = "hybridnoc-fault-trace";
constexpr const char* kScenarioMagic = "hybridnoc-fault-scenario";

void write_record(std::ostream& out, const FaultRecord& r) {
  out << r.cycle << ' ' << r.msg_id << ' ' << config_kind_name(r.kind) << ' '
      << r.src << ' ' << r.dst << ' ' << r.occurrence << ' '
      << fault_action_name(r.action) << ' ' << r.delay << '\n';
}

/// Parse one record line (comment already stripped, known non-blank).
FaultRecord parse_record(const std::string& line) {
  std::istringstream ls(line);
  FaultRecord r;
  std::string kind, action;
  HN_CHECK_MSG(static_cast<bool>(ls >> r.cycle >> r.msg_id >> kind >> r.src >>
                                 r.dst >> r.occurrence >> action >> r.delay),
               "malformed fault-trace record");
  const auto k = parse_config_kind(kind);
  const auto a = parse_fault_action(action);
  HN_CHECK_MSG(k.has_value(), "unknown config kind in fault trace");
  HN_CHECK_MSG(a.has_value(), "unknown fault action in fault trace");
  HN_CHECK_MSG(r.src >= 0 && r.dst >= 0 && r.occurrence >= 0,
               "invalid fault-trace record");
  r.kind = *k;
  r.action = *a;
  // Data-plane records (v2) carry a port index in dst and a restricted
  // action set; reject inconsistent combinations at the parse boundary.
  if (r.kind == ConfigKind::Link) {
    HN_CHECK_MSG(r.dst >= 1 && r.dst < kNumPorts, "invalid link fault port");
    HN_CHECK_MSG(r.action == FaultAction::Corrupt ||
                     r.action == FaultAction::Stuck ||
                     r.action == FaultAction::Kill,
                 "invalid link fault action");
  } else if (r.kind == ConfigKind::Router) {
    HN_CHECK_MSG(r.action == FaultAction::Kill, "invalid router fault action");
  } else {
    HN_CHECK_MSG(r.action != FaultAction::Corrupt &&
                     r.action != FaultAction::Stuck &&
                     r.action != FaultAction::Kill,
                 "data-plane action on a config record");
  }
  return r;
}

/// Strip `#` comments; returns false for lines with no content left.
bool strip_to_content(std::string& line) {
  const auto hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  return line.find_first_not_of(" \t\r") != std::string::npos;
}

void check_version_header(std::istream& in, const char* magic) {
  std::string word;
  int version = -1;
  char v = '\0';
  HN_CHECK_MSG(static_cast<bool>(in >> word >> v >> version) && word == magic &&
                   v == 'v',
               "bad fault-trace header");
  HN_CHECK_MSG(version >= 1 && version <= FaultTrace::kVersion,
               "unsupported fault-trace version");
  std::string rest;
  std::getline(in, rest);  // consume the remainder of the header line
}

}  // namespace

void save_fault_trace(std::ostream& out, const FaultTrace& trace) {
  out << kTraceMagic << " v" << FaultTrace::kVersion << '\n';
  out << "# cycle msg_id kind src dst occurrence action delay\n";
  for (const auto& r : trace.records) write_record(out, r);
}

FaultTrace load_fault_trace(std::istream& in) {
  check_version_header(in, kTraceMagic);
  FaultTrace t;
  std::string line;
  while (std::getline(in, line)) {
    if (!strip_to_content(line)) continue;
    t.records.push_back(parse_record(line));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Scenario serialization
// ---------------------------------------------------------------------------

NocConfig FaultScenario::to_config() const {
  NocConfig cfg = NocConfig::hybrid_tdm_vc4(k);
  cfg.slot_table_size = slot_table_size;
  cfg.dynamic_slot_sizing = dynamic_slot_sizing;
  cfg.initial_active_slots = initial_active_slots;
  cfg.path_freq_threshold = path_freq_threshold;
  cfg.policy_epoch_cycles = policy_epoch_cycles;
  cfg.path_idle_timeout = path_idle_timeout;
  cfg.pending_setup_timeout_cycles = pending_setup_timeout_cycles;
  cfg.reservation_lease_cycles = reservation_lease_cycles;
  cfg.link_ber = link_ber;
  cfg.fault_seed = link_fault_seed;
  cfg.e2e_recovery = e2e_recovery;
  cfg.retx_timeout_cycles = retx_timeout_cycles;
  cfg.retx_backoff_cap_cycles = retx_backoff_cap_cycles;
  cfg.max_retx_attempts = max_retx_attempts;
  cfg.cs_fail_threshold = cs_fail_threshold;
  cfg.watchdog_stall_cycles = watchdog_stall_cycles;
  cfg.setup_backoff_base_cycles = setup_backoff_base_cycles;
  cfg.setup_backoff_cap_cycles = setup_backoff_cap_cycles;
  return cfg;
}

void save_fault_scenario(std::ostream& out, const FaultScenario& s) {
  out << kScenarioMagic << " v" << FaultTrace::kVersion << '\n';
  out << "k " << s.k << '\n';
  out << "slot_table_size " << s.slot_table_size << '\n';
  out << "dynamic_slot_sizing " << (s.dynamic_slot_sizing ? 1 : 0) << '\n';
  out << "initial_active_slots " << s.initial_active_slots << '\n';
  out << "path_freq_threshold " << s.path_freq_threshold << '\n';
  out << "policy_epoch_cycles " << s.policy_epoch_cycles << '\n';
  out << "path_idle_timeout " << s.path_idle_timeout << '\n';
  out << "pending_setup_timeout " << s.pending_setup_timeout_cycles << '\n';
  out << "reservation_lease " << s.reservation_lease_cycles << '\n';
  out << "run_cycles " << s.run_cycles << '\n';
  out << "cooldown_cycles " << s.cooldown_cycles << '\n';
  for (const Cycle c : s.resizes) out << "resize " << c << '\n';
  out << "drop_prob " << s.fault_params.drop_prob << '\n';
  out << "delay_prob " << s.fault_params.delay_prob << '\n';
  out << "dup_prob " << s.fault_params.dup_prob << '\n';
  out << "max_delay_cycles " << s.fault_params.max_delay_cycles << '\n';
  out << "fault_seed " << s.fault_params.seed << '\n';
  out << "link_ber " << s.link_ber << '\n';
  out << "link_fault_seed " << s.link_fault_seed << '\n';
  out << "e2e_recovery " << (s.e2e_recovery ? 1 : 0) << '\n';
  out << "retx_timeout " << s.retx_timeout_cycles << '\n';
  out << "retx_backoff_cap " << s.retx_backoff_cap_cycles << '\n';
  out << "max_retx_attempts " << s.max_retx_attempts << '\n';
  out << "cs_fail_threshold " << s.cs_fail_threshold << '\n';
  out << "watchdog_stall " << s.watchdog_stall_cycles << '\n';
  out << "setup_backoff_base " << s.setup_backoff_base_cycles << '\n';
  out << "setup_backoff_cap " << s.setup_backoff_cap_cycles << '\n';
  for (const auto& d : s.dead_links) {
    out << "kill_link " << d.node << ' ' << d.port << ' ' << d.start << '\n';
  }
  for (const auto& d : s.stuck_links) {
    out << "stick_link " << d.node << ' ' << d.port << ' ' << d.start << ' '
        << d.duration << '\n';
  }
  for (const auto& [node, at] : s.dead_routers) {
    out << "kill_router " << node << ' ' << at << '\n';
  }
  if (!s.invariant.empty()) out << "invariant " << s.invariant << '\n';
  out << "traffic " << s.traffic.size() << '\n';
  out << "# cycle src dst flits\n";
  for (const auto& e : s.traffic) {
    out << e.cycle << ' ' << e.src << ' ' << e.dst << ' ' << e.flits << '\n';
  }
  out << "faults " << s.faults.records.size() << '\n';
  out << "# cycle msg_id kind src dst occurrence action delay\n";
  for (const auto& r : s.faults.records) write_record(out, r);
  out << "end\n";
}

FaultScenario load_fault_scenario(std::istream& in) {
  check_version_header(in, kScenarioMagic);
  FaultScenario s;
  std::string line;
  bool saw_end = false;
  while (!saw_end && std::getline(in, line)) {
    if (!strip_to_content(line)) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    auto read_u64 = [&ls, &key]() {
      std::uint64_t v = 0;
      HN_CHECK_MSG(static_cast<bool>(ls >> v),
                   "malformed scenario field value");
      (void)key;
      return v;
    };
    auto read_double = [&ls]() {
      double v = 0;
      HN_CHECK_MSG(static_cast<bool>(ls >> v),
                   "malformed scenario field value");
      return v;
    };
    if (key == "k") s.k = static_cast<int>(read_u64());
    else if (key == "slot_table_size") s.slot_table_size = static_cast<int>(read_u64());
    else if (key == "dynamic_slot_sizing") s.dynamic_slot_sizing = read_u64() != 0;
    else if (key == "initial_active_slots") s.initial_active_slots = static_cast<int>(read_u64());
    else if (key == "path_freq_threshold") s.path_freq_threshold = static_cast<int>(read_u64());
    else if (key == "policy_epoch_cycles") s.policy_epoch_cycles = static_cast<int>(read_u64());
    else if (key == "path_idle_timeout") s.path_idle_timeout = read_u64();
    else if (key == "pending_setup_timeout") s.pending_setup_timeout_cycles = read_u64();
    else if (key == "reservation_lease") s.reservation_lease_cycles = read_u64();
    else if (key == "run_cycles") s.run_cycles = read_u64();
    else if (key == "cooldown_cycles") s.cooldown_cycles = read_u64();
    else if (key == "resize") s.resizes.push_back(read_u64());
    else if (key == "drop_prob") s.fault_params.drop_prob = read_double();
    else if (key == "delay_prob") s.fault_params.delay_prob = read_double();
    else if (key == "dup_prob") s.fault_params.dup_prob = read_double();
    else if (key == "max_delay_cycles") s.fault_params.max_delay_cycles = read_u64();
    else if (key == "fault_seed") s.fault_params.seed = read_u64();
    else if (key == "link_ber") s.link_ber = read_double();
    else if (key == "link_fault_seed") s.link_fault_seed = read_u64();
    else if (key == "e2e_recovery") s.e2e_recovery = read_u64() != 0;
    else if (key == "retx_timeout") s.retx_timeout_cycles = read_u64();
    else if (key == "retx_backoff_cap") s.retx_backoff_cap_cycles = read_u64();
    else if (key == "max_retx_attempts") s.max_retx_attempts = static_cast<int>(read_u64());
    else if (key == "cs_fail_threshold") s.cs_fail_threshold = static_cast<int>(read_u64());
    else if (key == "watchdog_stall") s.watchdog_stall_cycles = read_u64();
    else if (key == "setup_backoff_base") s.setup_backoff_base_cycles = read_u64();
    else if (key == "setup_backoff_cap") s.setup_backoff_cap_cycles = read_u64();
    else if (key == "kill_link" || key == "stick_link") {
      FaultScenario::LinkFaultSpec d;
      d.node = static_cast<NodeId>(read_u64());
      d.port = static_cast<int>(read_u64());
      d.start = read_u64();
      if (key == "stick_link") d.duration = read_u64();
      HN_CHECK_MSG(d.port >= 1 && d.port < kNumPorts,
                   "invalid scenario link fault port");
      (key == "kill_link" ? s.dead_links : s.stuck_links).push_back(d);
    } else if (key == "kill_router") {
      const auto node = static_cast<NodeId>(read_u64());
      s.dead_routers.emplace_back(node, read_u64());
    } else if (key == "invariant") {
      HN_CHECK_MSG(static_cast<bool>(ls >> s.invariant),
                   "malformed scenario field value");
    } else if (key == "traffic") {
      const auto n = read_u64();
      while (s.traffic.size() < n && std::getline(in, line)) {
        if (!strip_to_content(line)) continue;
        std::istringstream es(line);
        TraceEntry e;
        HN_CHECK_MSG(
            static_cast<bool>(es >> e.cycle >> e.src >> e.dst >> e.flits),
            "malformed scenario traffic entry");
        HN_CHECK_MSG(e.flits >= 1 && e.src >= 0 && e.dst >= 0 &&
                         (s.traffic.empty() || s.traffic.back().cycle <= e.cycle),
                     "invalid scenario traffic entry");
        s.traffic.push_back(e);
      }
      HN_CHECK_MSG(s.traffic.size() == n, "truncated scenario traffic block");
    } else if (key == "faults") {
      const auto n = read_u64();
      while (s.faults.records.size() < n && std::getline(in, line)) {
        if (!strip_to_content(line)) continue;
        s.faults.records.push_back(parse_record(line));
      }
      HN_CHECK_MSG(s.faults.records.size() == n,
                   "truncated scenario fault block");
    } else if (key == "end") {
      saw_end = true;
    } else {
      HN_CHECK_MSG(false, "unknown scenario field");
    }
  }
  HN_CHECK_MSG(saw_end, "scenario file missing end marker");
  return s;
}

FaultScenario read_fault_scenario_file(const std::string& path) {
  std::ifstream in(path);
  HN_CHECK_MSG(in.good(), "cannot open fault scenario file");
  return load_fault_scenario(in);
}

void write_fault_scenario_file(const std::string& path,
                               const FaultScenario& s) {
  // Atomic write-temp-then-rename: an interrupted writer (shrinker, test
  // fixture recorder) never leaves a torn scenario behind.
  std::ostringstream out;
  save_fault_scenario(out, s);
  std::string err;
  HN_CHECK_MSG(write_file_atomic(path, out.str(), &err),
               "cannot write fault scenario file");
}

// ---------------------------------------------------------------------------
// Scenario runner
// ---------------------------------------------------------------------------

namespace {

/// FaultRecord <-> LinkFaultEvent mapping for v2 data-plane records.
FaultRecord data_fault_record(const LinkFaultEvent& e) {
  FaultRecord r;
  r.cycle = e.start;
  r.kind = e.kind == FaultKind::DeadRouter ? ConfigKind::Router
                                           : ConfigKind::Link;
  r.src = e.node;
  r.dst = static_cast<NodeId>(e.out);  // port index; Local (0) for routers
  r.occurrence = static_cast<int>(e.occurrence);
  switch (e.kind) {
    case FaultKind::Transient: r.action = FaultAction::Corrupt; break;
    case FaultKind::StuckLink:
      r.action = FaultAction::Stuck;
      r.delay = e.duration;
      break;
    case FaultKind::DeadLink:
    case FaultKind::DeadRouter: r.action = FaultAction::Kill; break;
  }
  return r;
}

bool is_data_fault_record(const FaultRecord& r) {
  return r.kind == ConfigKind::Link || r.kind == ConfigKind::Router;
}

}  // namespace

ScenarioOutcome run_fault_scenario(const FaultScenario& s, ScenarioMode mode,
                                   bool audit_each_event,
                                   FaultTrace* recorded) {
  HybridNetwork net(s.to_config());
  const bool data_faults = s.link_ber > 0.0 || !s.dead_links.empty() ||
                           !s.stuck_links.empty() || !s.dead_routers.empty();
  if (mode == ScenarioMode::Record) {
    if (data_faults) {
      FaultModel& fm = net.ensure_fault_model();
      for (const auto& d : s.dead_links)
        fm.kill_link(d.node, static_cast<Port>(d.port), d.start);
      for (const auto& d : s.stuck_links)
        fm.stick_link(d.node, static_cast<Port>(d.port), d.start, d.duration);
      for (const auto& [node, at] : s.dead_routers) fm.kill_router(node, at);
      fm.set_recording(true);
    }
    net.enable_config_faults(s.fault_params);
    net.start_fault_trace_recording();
  } else {
    // Replay re-derives every data-plane fault from the trace (not the
    // scenario's kill/stick schedule), so the shrinker can drop those
    // records too; transient corruption replays by (link, occurrence) and
    // never evaluates the BER hash.
    FaultTrace config_trace;
    std::vector<LinkFaultEvent> transients;
    bool any_data_records = false;
    for (const auto& r : s.faults.records) {
      if (!is_data_fault_record(r)) {
        config_trace.records.push_back(r);
        continue;
      }
      any_data_records = true;
      FaultModel& fm = net.ensure_fault_model();
      if (r.kind == ConfigKind::Router) {
        fm.kill_router(r.src, r.cycle);
      } else if (r.action == FaultAction::Kill) {
        fm.kill_link(r.src, static_cast<Port>(r.dst), r.cycle);
      } else if (r.action == FaultAction::Stuck) {
        fm.stick_link(r.src, static_cast<Port>(r.dst), r.cycle, r.delay);
      } else {
        transients.push_back({FaultKind::Transient, r.src,
                              static_cast<Port>(r.dst), r.cycle, 0,
                              static_cast<std::uint64_t>(r.occurrence)});
      }
    }
    if (any_data_records || s.link_ber > 0.0) {
      net.ensure_fault_model().set_transient_replay(transients);
    }
    net.enable_config_fault_replay(config_trace, audit_each_event);
  }

  // Resize requests and traffic are both indexed against the scenario clock;
  // traffic entries beyond run_cycles keep injecting through the cooldown.
  std::size_t tpos = 0;
  auto offer = [&](Cycle cycle) {
    while (tpos < s.traffic.size() && s.traffic[tpos].cycle <= cycle) {
      const TraceEntry& e = s.traffic[tpos++];
      auto p = make_packet();
      p->id = static_cast<PacketId>(tpos);
      p->src = e.src;
      p->dst = e.dst;
      p->num_flits = e.flits;
      net.ni(e.src).send(std::move(p), net.now());
    }
  };
  std::unordered_set<Cycle> resize_at(s.resizes.begin(), s.resizes.end());

  for (Cycle cycle = 0; cycle < s.run_cycles; ++cycle) {
    if (resize_at.count(cycle)) net.controller().request_resize();
    offer(cycle);
    net.tick();
  }
  if (mode == ScenarioMode::Record) {
    net.stop_fault_trace_recording();
    net.disable_config_faults();
  }
  // Replay stays armed through the cooldown: a shrunk trace may fault
  // events the storm window no longer covers, and unmatched events are
  // unfaulted anyway.
  for (Cycle cycle = s.run_cycles; cycle < s.run_cycles + s.cooldown_cycles;
       ++cycle) {
    offer(cycle);
    net.tick();
  }
  net.set_policy_frozen(true);
  for (int i = 0; i < 60000 && !net.quiescent(); ++i) net.tick();

  ScenarioOutcome o;
  o.quiesced = net.quiescent();
  // Three leases: enough for entries orphaned at the very end of the drain
  // to expire, twice over.
  for (Cycle i = 0; i < 3 * s.reservation_lease_cycles; ++i) net.tick();

  const ReservationAudit audit = net.audit_reservations();
  o.broken_windows = audit.broken_windows;
  o.orphan_entries = audit.orphan_entries;
  o.valid_slot_entries = net.total_valid_slot_entries();
  o.active_connections = net.total_active_connections();
  o.config_in_flight = net.controller().config_in_flight();
  o.slot_state_digest = net.slot_state_digest();
  o.faults_dropped = net.faults_dropped();
  o.faults_delayed = net.faults_delayed();
  o.faults_duplicated = net.faults_duplicated();
  o.stale_config_drops = net.total_stale_config_drops();
  o.pending_timeouts = net.total_pending_timeouts();
  o.expired_reservations = net.total_expired_reservations();
  o.orphan_ack_teardowns = 0;
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    o.orphan_ack_teardowns += net.hybrid_ni(n).orphan_ack_teardowns();
  }
  o.setup_failures = net.total_setup_failures();
  o.replay_events = net.replay_events();
  o.replay_applied = net.replay_applied();
  o.replay_audit_failures = net.replay_audit_failures();
  const DegradationReport deg = net.degradation_report();
  o.data_sent = deg.data_sent;
  o.data_delivered = deg.data_delivered;
  o.retransmits = deg.retransmits;
  o.retx_give_ups = deg.retx_give_ups;
  o.unreachable_failed = deg.unreachable_failed;
  o.crc_flagged_flits = deg.crc_flagged_flits;
  o.crc_squashed_packets = deg.crc_squashed_packets;
  o.cs_fault_teardowns = net.total_cs_fault_teardowns();
  o.setup_give_ups = net.total_setup_give_ups();
  o.failed_links = deg.failed_links;
  if (recorded) {
    *recorded = net.recorded_fault_trace();
    // Fold the run's data-plane faults in (v2): the scheduled kills/stucks
    // and every transient corruption that actually fired, so the trace alone
    // reproduces the storm.
    if (const FaultModel* fm = net.fault_model()) {
      for (const auto& e : fm->scheduled_events())
        recorded->records.push_back(data_fault_record(e));
      for (const auto& e : fm->fired_transients())
        recorded->records.push_back(data_fault_record(e));
    }
  }
  return o;
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

bool violates_invariant(const std::string& name, const ScenarioOutcome& o) {
  if (name == "converges") {
    return !o.quiesced || o.broken_windows != 0 || o.orphan_entries != 0 ||
           o.valid_slot_entries != 0 || o.active_connections != 0 ||
           o.config_in_flight != 0;
  }
  if (name == "no-stale-config-drops") return o.stale_config_drops > 0;
  if (name == "no-pending-timeouts") return o.pending_timeouts > 0;
  if (name == "no-expired-reservations") return o.expired_reservations > 0;
  if (name == "no-orphan-ack-teardowns") return o.orphan_ack_teardowns > 0;
  if (name == "clean-replay-audit") return o.replay_audit_failures > 0;
  if (name == "all-delivered") {
    return !o.quiesced || o.data_delivered < o.data_sent;
  }
  if (name == "no-fault-teardowns") return o.cs_fault_teardowns > 0;
  if (name == "no-retx-give-ups") return o.retx_give_ups > 0;
  HN_CHECK_MSG(false, "unknown invariant name");
  return false;
}

std::vector<std::string> known_invariants() {
  return {"converges",
          "no-stale-config-drops",
          "no-pending-timeouts",
          "no-expired-reservations",
          "no-orphan-ack-teardowns",
          "clean-replay-audit",
          "all-delivered",
          "no-fault-teardowns",
          "no-retx-give-ups"};
}

// ---------------------------------------------------------------------------
// Delta-debugging shrinker
// ---------------------------------------------------------------------------

ShrinkResult shrink_fault_scenario(
    const FaultScenario& failing, const std::string& invariant,
    bool audit_each_event,
    const std::function<void(const std::string&)>& progress) {
  auto say = [&](const std::string& msg) {
    if (progress) progress(msg);
  };

  std::vector<FaultRecord> faults;
  for (const auto& r : failing.faults.records) {
    if (r.action != FaultAction::None) faults.push_back(r);
  }

  ShrinkResult res;
  res.original_records = failing.faults.records.size();
  res.original_faults = faults.size();

  auto with_faults = [&](const std::vector<FaultRecord>& subset) {
    FaultScenario s = failing;
    s.faults.records = subset;
    s.invariant = invariant;
    return s;
  };
  auto still_fails = [&](const std::vector<FaultRecord>& subset) {
    ++res.runs;
    const ScenarioOutcome o = run_fault_scenario(
        with_faults(subset), ScenarioMode::Replay, audit_each_event);
    return violates_invariant(invariant, o);
  };

  HN_CHECK_MSG(still_fails(faults),
               "scenario does not violate the invariant to begin with");
  say("baseline violates '" + invariant + "' with " +
      std::to_string(faults.size()) + " faults (of " +
      std::to_string(res.original_records) + " recorded events)");

  // Classic ddmin: try subsets, then complements, at doubling granularity.
  std::size_t n = 2;
  while (faults.size() >= 2) {
    const std::size_t chunk = (faults.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t start = 0; start < faults.size() && !reduced;
         start += chunk) {
      const std::size_t stop = std::min(start + chunk, faults.size());
      std::vector<FaultRecord> subset(faults.begin() + start,
                                      faults.begin() + stop);
      if (subset.size() < faults.size() && still_fails(subset)) {
        faults = std::move(subset);
        n = 2;
        reduced = true;
        say("reduced to subset of " + std::to_string(faults.size()));
      }
    }
    for (std::size_t start = 0; start < faults.size() && !reduced;
         start += chunk) {
      const std::size_t stop = std::min(start + chunk, faults.size());
      std::vector<FaultRecord> complement;
      complement.insert(complement.end(), faults.begin(), faults.begin() + start);
      complement.insert(complement.end(), faults.begin() + stop, faults.end());
      if (!complement.empty() && complement.size() < faults.size() &&
          still_fails(complement)) {
        faults = std::move(complement);
        n = std::max<std::size_t>(n - 1, 2);
        reduced = true;
        say("reduced to complement of " + std::to_string(faults.size()));
      }
    }
    if (!reduced) {
      if (n >= faults.size()) break;
      n = std::min(n * 2, faults.size());
    }
  }

  // Second phase: truncate the injection schedule to the shortest prefix
  // that still fails (fault counters are monotone, so the violation is
  // decided by the time its fault fires; everything after is ballast in a
  // checked-in fixture). Binary search assumes monotonicity — the final
  // verification run below restores the full schedule if the assumption
  // broke.
  FaultScenario trimmed = with_faults(faults);
  {
    const auto& full = failing.traffic;
    std::size_t lo = 0, hi = full.size();
    auto fails_with_prefix = [&](std::size_t m) {
      FaultScenario t = trimmed;
      t.traffic.assign(full.begin(), full.begin() + m);
      ++res.runs;
      const ScenarioOutcome o =
          run_fault_scenario(t, ScenarioMode::Replay, audit_each_event);
      return violates_invariant(invariant, o);
    };
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (fails_with_prefix(mid)) hi = mid;
      else lo = mid + 1;
    }
    if (hi < full.size()) {
      if (fails_with_prefix(hi)) {
        trimmed.traffic.assign(full.begin(), full.begin() + hi);
        say("trimmed traffic from " + std::to_string(full.size()) + " to " +
            std::to_string(hi) + " injections");
      } else {
        say("traffic trim not monotone; keeping the full schedule");
      }
    }
  }

  res.final_faults = faults.size();
  res.minimized = std::move(trimmed);
  say("minimal failing set: " + std::to_string(faults.size()) + " faults, " +
      std::to_string(res.runs) + " runs");
  return res;
}

}  // namespace hybridnoc
