// The TDM hybrid-switched network: the mesh fabric of src/noc instantiated
// with HybridRouter/HybridNi, plus the network-wide controller for dynamic
// time-division granularity.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "tdm/controller.hpp"
#include "tdm/fault_trace.hpp"
#include "tdm/hybrid_ni.hpp"
#include "tdm/hybrid_router.hpp"

namespace hybridnoc {

/// Result of the network-wide reservation consistency audit: every installed
/// connection window is walked hop by hop against the routers' slot tables.
struct ReservationAudit {
  int windows_walked = 0;
  /// Windows whose walk left the reserved path before its destination
  /// (missing entry, foreign owner, or inconsistent output ports).
  int broken_windows = 0;
  /// Valid slot-table entries no connection window accounts for.
  int orphan_entries = 0;
  bool clean() const { return broken_windows == 0 && orphan_entries == 0; }
};

namespace detail {
/// Holds the controller so it is constructed before the Network base class
/// (whose factories capture it).
struct ControllerHolder {
  explicit ControllerHolder(const NocConfig& cfg)
      : controller(std::make_unique<TdmController>(cfg)) {}
  std::unique_ptr<TdmController> controller;
};
}  // namespace detail

class HybridNetwork : private detail::ControllerHolder, public Network {
 public:
  explicit HybridNetwork(const NocConfig& cfg);

  void tick() override;

  TdmController& controller() { return *ControllerHolder::controller; }
  const TdmController& controller() const { return *ControllerHolder::controller; }

  HybridRouter& hybrid_router(NodeId n) {
    return static_cast<HybridRouter&>(router(n));
  }
  HybridNi& hybrid_ni(NodeId n) { return static_cast<HybridNi&>(ni(n)); }

  // --- config-message fault injection (testing harness) ---
  /// Seeded-random faults. Resets the fault counters so back-to-back
  /// harness runs start from zero.
  void enable_config_faults(const ConfigFaultParams& p);
  void disable_config_faults();
  std::uint64_t faults_dropped() const { return faults_dropped_; }
  std::uint64_t faults_delayed() const { return faults_delayed_; }
  std::uint64_t faults_duplicated() const { return faults_duplicated_; }

  // --- fault-decision record/replay (src/tdm/fault_trace.hpp) ---
  /// Capture every config-protocol dispatch (faulted or not) as a
  /// FaultRecord. Composes with enable_config_faults: enable faults first,
  /// then recording, and the captured trace holds the seeded harness's
  /// exact decision sequence.
  void start_fault_trace_recording();
  void stop_fault_trace_recording();
  bool fault_trace_recording() const { return recording_; }
  const FaultTrace& recorded_fault_trace() const { return recorded_trace_; }

  /// Re-drive a recorded decision sequence with no RNG involved: each
  /// dispatched config message is matched by (kind, src, dst, occurrence)
  /// and the recorded action applied; unmatched events are unfaulted.
  /// Mutually exclusive with enable_config_faults. With
  /// `audit_each_event`, the reservation audit runs after every replayed
  /// event and replay_audit_failures() counts the events after which an
  /// installed window failed its hop-by-hop walk.
  void enable_config_fault_replay(const FaultTrace& trace,
                                  bool audit_each_event = false);
  void disable_config_fault_replay();
  /// Config-protocol dispatches seen while replay was armed.
  std::uint64_t replay_events() const { return replay_events_; }
  /// Trace records whose action was re-applied to a matching dispatch.
  std::uint64_t replay_applied() const { return replay_applied_; }
  /// Events after which the audit reported a broken window (see above).
  std::uint64_t replay_audit_failures() const {
    return replay_audit_failures_;
  }

  /// FNV-1a digest over every valid slot-table entry
  /// (node, slot, in-port, out-port, owner) — a cheap fingerprint for
  /// record-vs-replay final-state comparison.
  std::uint64_t slot_state_digest() const;

  /// Walk every NI's reservation windows against every router's slot table;
  /// see ReservationAudit. Meant for quiesced networks (tests), but safe to
  /// call at any time.
  ReservationAudit audit_reservations() const;

  // --- aggregate circuit statistics ---
  std::uint64_t total_cs_packets() const;
  std::uint64_t total_setups_sent() const;
  std::uint64_t total_setup_failures() const;
  std::uint64_t total_hitchhike_packets() const;
  std::uint64_t total_vicinity_packets() const;
  std::uint64_t total_hitchhike_bounces() const;
  std::uint64_t total_ps_steals() const;
  int total_active_connections() const;
  /// Generation-fence discards, summed over routers and NIs.
  std::uint64_t total_stale_config_drops() const;
  std::uint64_t total_pending_timeouts() const;
  /// Slot-table entries reclaimed by the routers' reservation lease.
  std::uint64_t total_expired_reservations() const;
  int total_valid_slot_entries() const;
  /// Circuits torn down by the liveness monitor (data-plane faults).
  std::uint64_t total_cs_fault_teardowns() const;
  /// Setup retries abandoned into cooldown after exhausting their budget.
  std::uint64_t total_setup_give_ups() const;
  /// Config messages evaporated in-network because a link fault corrupted
  /// them (summed over routers).
  std::uint64_t total_corrupt_config_drops() const;

 protected:
  /// Fast-forward must never jump past a controller epoch boundary or a
  /// pending-resize quiescence poll.
  Cycle external_next_event(Cycle now) const override;

  /// Checkpoint the TDM controller alongside the fabric. Requires the
  /// config-fault harness to be off (its record/replay cursors are not
  /// simulation state and are not serialized).
  void save_external_state(StateWriter& w) const override;
  void restore_external_state(StateReader& r) override;

 private:
  enum class FaultMode : std::uint8_t { Off, Seeded, Replay };

  ConfigFaultDecision next_fault();
  /// The single interception point: draws (Seeded) or looks up (Replay) the
  /// decision for one dispatched config message, records it when recording,
  /// and audits when replaying with audit_each_event.
  ConfigFaultDecision on_config_dispatch(const PacketPtr& pkt, Cycle now);
  /// Install the dispatch interceptor on every NI while any of
  /// seeded faults / recording / replay is active; clear it otherwise.
  void update_fault_hooks();
  void reset_fault_counters();

  ConfigFaultParams fault_params_;
  Rng fault_rng_;
  std::uint64_t faults_dropped_ = 0;
  std::uint64_t faults_delayed_ = 0;
  std::uint64_t faults_duplicated_ = 0;

  FaultMode fault_mode_ = FaultMode::Off;
  bool recording_ = false;
  bool replay_audit_each_event_ = false;
  FaultTrace recorded_trace_;
  FaultTrace replay_trace_;
  /// (kind, src, dst) -> dispatches seen, independent streams for the
  /// recording and replay sides so they can coexist.
  std::unordered_map<std::uint64_t, int> record_occurrence_;
  std::unordered_map<std::uint64_t, int> replay_occurrence_;
  /// Full (kind, src, dst, occurrence) key -> index into replay_trace_.
  std::unordered_map<std::uint64_t, std::size_t> replay_index_;
  std::uint64_t replay_events_ = 0;
  std::uint64_t replay_applied_ = 0;
  std::uint64_t replay_audit_failures_ = 0;

  /// Epoch-stamped visited scratch for audit_reservations: a cell is
  /// "visited" iff it holds the current epoch, so consecutive audits reuse
  /// the allocation without clearing it (mutable: the audit is logically
  /// const). Layout [node][slot * kNumPorts + in_port].
  mutable std::vector<std::uint32_t> audit_scratch_;
  mutable std::uint32_t audit_epoch_ = 0;
};

}  // namespace hybridnoc
