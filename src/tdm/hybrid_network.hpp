// The TDM hybrid-switched network: the mesh fabric of src/noc instantiated
// with HybridRouter/HybridNi, plus the network-wide controller for dynamic
// time-division granularity.
#pragma once

#include <memory>

#include "noc/network.hpp"
#include "tdm/controller.hpp"
#include "tdm/hybrid_ni.hpp"
#include "tdm/hybrid_router.hpp"

namespace hybridnoc {

namespace detail {
/// Holds the controller so it is constructed before the Network base class
/// (whose factories capture it).
struct ControllerHolder {
  explicit ControllerHolder(const NocConfig& cfg)
      : controller(std::make_unique<TdmController>(cfg)) {}
  std::unique_ptr<TdmController> controller;
};
}  // namespace detail

class HybridNetwork : private detail::ControllerHolder, public Network {
 public:
  explicit HybridNetwork(const NocConfig& cfg);

  void tick() override;

  TdmController& controller() { return *ControllerHolder::controller; }
  const TdmController& controller() const { return *ControllerHolder::controller; }

  HybridRouter& hybrid_router(NodeId n) {
    return static_cast<HybridRouter&>(router(n));
  }
  HybridNi& hybrid_ni(NodeId n) { return static_cast<HybridNi&>(ni(n)); }

  // --- aggregate circuit statistics ---
  std::uint64_t total_cs_packets() const;
  std::uint64_t total_setups_sent() const;
  std::uint64_t total_setup_failures() const;
  std::uint64_t total_hitchhike_packets() const;
  std::uint64_t total_vicinity_packets() const;
  std::uint64_t total_hitchhike_bounces() const;
  std::uint64_t total_ps_steals() const;
  int total_active_connections() const;
};

}  // namespace hybridnoc
