// The TDM hybrid-switched network: the mesh fabric of src/noc instantiated
// with HybridRouter/HybridNi, plus the network-wide controller for dynamic
// time-division granularity.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "tdm/controller.hpp"
#include "tdm/hybrid_ni.hpp"
#include "tdm/hybrid_router.hpp"

namespace hybridnoc {

/// Seeded parameters for the config-message fault-injection harness: every
/// outgoing setup/teardown/ack is independently dropped, delayed or
/// duplicated with the given probabilities.
struct ConfigFaultParams {
  double drop_prob = 0.0;
  double delay_prob = 0.0;
  double dup_prob = 0.0;
  Cycle max_delay_cycles = 64;  ///< delays are uniform in [1, max]
  std::uint64_t seed = 1;
};

/// Result of the network-wide reservation consistency audit: every installed
/// connection window is walked hop by hop against the routers' slot tables.
struct ReservationAudit {
  int windows_walked = 0;
  /// Windows whose walk left the reserved path before its destination
  /// (missing entry, foreign owner, or inconsistent output ports).
  int broken_windows = 0;
  /// Valid slot-table entries no connection window accounts for.
  int orphan_entries = 0;
  bool clean() const { return broken_windows == 0 && orphan_entries == 0; }
};

namespace detail {
/// Holds the controller so it is constructed before the Network base class
/// (whose factories capture it).
struct ControllerHolder {
  explicit ControllerHolder(const NocConfig& cfg)
      : controller(std::make_unique<TdmController>(cfg)) {}
  std::unique_ptr<TdmController> controller;
};
}  // namespace detail

class HybridNetwork : private detail::ControllerHolder, public Network {
 public:
  explicit HybridNetwork(const NocConfig& cfg);

  void tick() override;

  TdmController& controller() { return *ControllerHolder::controller; }
  const TdmController& controller() const { return *ControllerHolder::controller; }

  HybridRouter& hybrid_router(NodeId n) {
    return static_cast<HybridRouter&>(router(n));
  }
  HybridNi& hybrid_ni(NodeId n) { return static_cast<HybridNi&>(ni(n)); }

  // --- config-message fault injection (testing harness) ---
  void enable_config_faults(const ConfigFaultParams& p);
  void disable_config_faults();
  std::uint64_t faults_dropped() const { return faults_dropped_; }
  std::uint64_t faults_delayed() const { return faults_delayed_; }
  std::uint64_t faults_duplicated() const { return faults_duplicated_; }

  /// Walk every NI's reservation windows against every router's slot table;
  /// see ReservationAudit. Meant for quiesced networks (tests), but safe to
  /// call at any time.
  ReservationAudit audit_reservations() const;

  // --- aggregate circuit statistics ---
  std::uint64_t total_cs_packets() const;
  std::uint64_t total_setups_sent() const;
  std::uint64_t total_setup_failures() const;
  std::uint64_t total_hitchhike_packets() const;
  std::uint64_t total_vicinity_packets() const;
  std::uint64_t total_hitchhike_bounces() const;
  std::uint64_t total_ps_steals() const;
  int total_active_connections() const;
  /// Generation-fence discards, summed over routers and NIs.
  std::uint64_t total_stale_config_drops() const;
  std::uint64_t total_pending_timeouts() const;
  /// Slot-table entries reclaimed by the routers' reservation lease.
  std::uint64_t total_expired_reservations() const;
  int total_valid_slot_entries() const;

 private:
  ConfigFaultDecision next_fault();

  ConfigFaultParams fault_params_;
  Rng fault_rng_;
  std::uint64_t faults_dropped_ = 0;
  std::uint64_t faults_delayed_ = 0;
  std::uint64_t faults_duplicated_ = 0;
};

}  // namespace hybridnoc
