// Network-wide controller for dynamic time-division granularity
// (Section II-C): all slot tables start with a small powered region; when
// path allocation keeps failing, the active size doubles and every table is
// reset so the setup procedure can restart.
//
// Resizing is only performed when no circuit-switched flit is in flight —
// while a resize is pending, NIs stop scheduling new circuit traffic and the
// controller waits for the fabric's CS population to drain to zero. (In
// hardware the reset would be sequenced the same way: quiesce, flash-clear,
// restart.) Configuration messages (setup/ack/teardown) do NOT block the
// reset: they are packet-switched and carry the table generation they were
// created under, so any message that straddles a reset is discarded at the
// next protocol endpoint instead of acting on wiped state.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/config.hpp"
#include "common/types.hpp"

namespace hybridnoc {

class StateWriter;
class StateReader;

class TdmController {
 public:
  explicit TdmController(const NocConfig& cfg);

  /// Powered slots per table right now.
  int active_slots() const { return active_slots_; }

  /// Monotonically increasing slot-table generation: bumped every time the
  /// tables are wiped (dynamic grow or forced reset). Config messages and
  /// reservation state are stamped with it; anything stamped with an older
  /// generation is stale and must be discarded.
  std::uint64_t table_generation() const { return generation_; }

  /// Request a table reset (doubling the active size when below capacity).
  /// Executes at the next tick on which the circuit fabric is quiescent.
  /// Exposed for tests and external resize policies.
  void request_resize() { reset_pending_ = true; }

  /// May NIs schedule new circuit-switched traffic / setups?
  bool cs_allowed() const { return !reset_pending_; }

  // NIs and routers bump these counters from inside their ticks, which the
  // parallel tick engine runs on shard threads; relaxed atomics keep the
  // sums exact (addition commutes) and the data race formally absent. The
  // controller only *reads* them in its own tick, after the cycle barrier.

  /// Source NI reports a setup failure ack (drives the resize heuristic).
  void record_setup_failure() {
    failures_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Source NI reports a successful setup.
  void record_setup_success() {
    successes_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- in-flight circuit-switched flit tracking ---
  void cs_flit_launched() { cs_in_flight_.fetch_add(1, std::memory_order_relaxed); }
  void cs_flit_retired() {
    const std::uint64_t prev =
        cs_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    HN_CHECK(prev > 0);
  }
  std::uint64_t cs_in_flight() const {
    return cs_in_flight_.load(std::memory_order_relaxed);
  }

  // --- in-flight configuration packet tracking (setup/teardown/ack) ---
  void config_launched() {
    config_in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  void config_retired() {
    const std::uint64_t prev =
        config_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    HN_CHECK(prev > 0);
  }
  std::uint64_t config_in_flight() const {
    return config_in_flight_.load(std::memory_order_relaxed);
  }

  // --- NIs holding planned circuit injections ---
  // Maintained by HybridNi on every empty <-> non-empty transition of its
  // cs_plan_ (delta +1 / -1), so the reset-pending quiescence poll is an
  // O(1) gauge read instead of an all-NI plan walk every cycle. Relaxed
  // atomic for the same reason as the in-flight counters: shard threads
  // mutate it from inside ticks, the controller reads it after the barrier.
  void note_cs_plan_transition(int delta) {
    nis_with_cs_plan_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// NIs whose circuit-injection plan is currently non-empty.
  int nis_with_cs_plan() const {
    return nis_with_cs_plan_.load(std::memory_order_relaxed);
  }

  /// Installed by the hybrid network: true when no circuit-switched flit is
  /// planned or in flight anywhere (NIs' plans included) — the precondition
  /// for a safe table reset.
  void set_quiesced_check(std::function<bool()> check) {
    quiesced_check_ = std::move(check);
  }

  /// Installed by the hybrid network: clears all slot tables, connection
  /// state, DLTs and pending setups, and applies the new active size.
  void set_reset_hook(std::function<void(int /*new_active*/)> hook) {
    reset_hook_ = std::move(hook);
  }

  /// Called once per cycle by the hybrid network, after all components.
  void tick(Cycle now);

  /// Earliest cycle > now at which a tick would do observable work (poll a
  /// pending reset, fold non-zero epoch counters, or arm the resize
  /// heuristic); kCycleNever when every upcoming tick is a provable no-op.
  /// Bounds how far the network's fast-forward may jump.
  Cycle next_event(Cycle now) const;

  int resizes() const { return resizes_; }
  std::uint64_t total_setup_failures() const { return total_failures_; }
  std::uint64_t total_setup_successes() const { return total_successes_; }

  /// Checkpoint: requires a drained fabric (no circuit or config traffic in
  /// flight, no NI holding a planned circuit injection).
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  const NocConfig cfg_;
  int active_slots_;
  std::uint64_t generation_ = 0;
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> successes_{0};
  std::uint64_t total_failures_ = 0;
  std::uint64_t total_successes_ = 0;
  std::atomic<std::uint64_t> cs_in_flight_{0};
  std::atomic<std::uint64_t> config_in_flight_{0};
  std::atomic<int> nis_with_cs_plan_{0};
  std::function<bool()> quiesced_check_;
  bool reset_pending_ = false;
  Cycle epoch_start_ = 0;
  int resizes_ = 0;
  std::function<void(int)> reset_hook_;
};

}  // namespace hybridnoc
