#include "tdm/dlt.hpp"

#include "common/assert.hpp"
#include "common/state_io.hpp"

namespace hybridnoc {

DestinationLookupTable::DestinationLookupTable(int capacity)
    : capacity_(capacity) {
  HN_CHECK(capacity >= 1);
  entries_.resize(static_cast<size_t>(capacity));
}

int DestinationLookupTable::index_of(NodeId dest) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].dest == dest) return static_cast<int>(i);
  }
  return -1;
}

void DestinationLookupTable::observe(NodeId dest, int slot, int duration, Port in,
                                     Port out, Cycle now, std::uint64_t generation) {
  ++accesses_;
  int idx = index_of(dest);
  if (idx < 0) {
    // Take a free entry, else evict the least recently used.
    int lru = 0;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].dest == kInvalidNode) {
        lru = static_cast<int>(i);
        break;
      }
      if (entries_[i].last_used < entries_[static_cast<size_t>(lru)].last_used)
        lru = static_cast<int>(i);
    }
    idx = lru;
  }
  DltEntry e;
  e.dest = dest;
  e.slot = slot;
  e.duration = duration;
  e.in = in;
  e.out = out;
  e.last_used = now;
  e.generation = generation;
  entries_[static_cast<size_t>(idx)] = e;
}

std::optional<DltEntry> DestinationLookupTable::find(NodeId dest) const {
  ++accesses_;
  const int idx = index_of(dest);
  if (idx < 0 || !entries_[static_cast<size_t>(idx)].active) return std::nullopt;
  return entries_[static_cast<size_t>(idx)];
}

void DestinationLookupTable::activate_route(int slot, Port in) {
  for (auto& e : entries_) {
    if (e.dest != kInvalidNode && e.slot == slot && e.in == in) e.active = true;
  }
}

void DestinationLookupTable::touch(NodeId dest, Cycle now) {
  const int idx = index_of(dest);
  if (idx >= 0) entries_[static_cast<size_t>(idx)].last_used = now;
}

bool DestinationLookupTable::record_failure(NodeId dest) {
  const int idx = index_of(dest);
  if (idx < 0) return false;
  auto& e = entries_[static_cast<size_t>(idx)];
  if (e.fail_count < 3) ++e.fail_count;
  if (e.fail_count >= 2) {  // counter reached '10'
    e = DltEntry{};
    return true;
  }
  return false;
}

void DestinationLookupTable::invalidate_route(int slot, Port in) {
  for (auto& e : entries_) {
    if (e.dest != kInvalidNode && e.slot == slot && e.in == in) e = DltEntry{};
  }
}

void DestinationLookupTable::remove(NodeId dest) {
  const int idx = index_of(dest);
  if (idx >= 0) entries_[static_cast<size_t>(idx)] = DltEntry{};
}

void DestinationLookupTable::clear() {
  for (auto& e : entries_) e = DltEntry{};
}

int DestinationLookupTable::size() const {
  int n = 0;
  for (const auto& e : entries_)
    if (e.dest != kInvalidNode) ++n;
  return n;
}

void DestinationLookupTable::save_state(StateWriter& w) const {
  w.section("dlt");
  w.i32(capacity_);
  for (const auto& e : entries_) {
    w.i32(e.dest);
    w.i32(e.slot);
    w.i32(e.duration);
    w.u8(static_cast<std::uint8_t>(e.in));
    w.u8(static_cast<std::uint8_t>(e.out));
    w.u8(e.fail_count);
    w.u64(e.last_used);
    w.u64(e.generation);
    w.b(e.active);
  }
  w.u64(accesses_);
}

void DestinationLookupTable::restore_state(StateReader& r) {
  r.section("dlt");
  if (r.i32() != capacity_) throw StateError("DLT capacity mismatch");
  for (auto& e : entries_) {
    e.dest = r.i32();
    e.slot = r.i32();
    e.duration = r.i32();
    e.in = static_cast<Port>(r.u8());
    e.out = static_cast<Port>(r.u8());
    if (static_cast<int>(e.in) >= kNumPorts ||
        static_cast<int>(e.out) >= kNumPorts) {
      throw StateError("DLT entry port out of range");
    }
    e.fail_count = r.u8();
    e.last_used = r.u64();
    e.generation = r.u64();
    e.active = r.b();
  }
  accesses_ = r.u64();
}

}  // namespace hybridnoc
